#include "membership/membership.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace accelring::membership {

namespace {
constexpr const char* kTag = "membership";

std::vector<ProcessId> sorted(const std::set<ProcessId>& s) {
  return {s.begin(), s.end()};
}

}  // namespace

void Membership::adopt_ring(const RingConfig& ring) {
  old_ring_ = ring;
  note_epoch(ring_epoch(ring.ring_id));
}

void Membership::note_epoch(uint64_t epoch) {
  if (epoch <= max_epoch_seen_) return;
  max_epoch_seen_ = epoch;
  if (epoch_store_ != nullptr) epoch_store_->store(epoch);
}

void Membership::start_discovery() {
  old_ring_.ring_id = make_ring_id(0, engine_.self_);
  old_ring_.members = {engine_.self_};
  enter_gather();
}

// ---------------------------------------------------------------------------
// Gather
// ---------------------------------------------------------------------------

void Membership::enter_gather(bool keep_candidates) {
  ++gathers_started_;
  if (engine_.state_ == State::kRecover) {
    // Abort the in-progress recovery: content already learned lives in
    // old_buffer_, so nothing is lost; the next attempt re-sends it.
    stale_rings_.insert(engine_.ring_.ring_id);
    engine_.recovery_queue_.clear();
    eor_received_.clear();
  } else if (engine_.state_ == State::kOperational) {
    // The engine buffer stays live during gather so late old-ring traffic is
    // still absorbed; the snapshot happens on entering recovery.
    old_ring_ = engine_.ring_;
    old_safe_line_ = engine_.safe_line_;
  }
  engine_.set_state(State::kGather);
  engine_.host_.cancel_timer(protocol::kTimerTokenRetransmit);
  engine_.host_.cancel_timer(protocol::kTimerTokenLoss);

  // A re-gather caused by new membership information arriving mid-commit
  // keeps the candidate set: those processes agreed with us milliseconds
  // ago, our join must keep advertising them or every reopened node starts
  // from {self} and the mutually-"different" joins cascade into a reopen
  // storm. Silent candidates are pruned by the consensus timeout. All other
  // causes (boot, token loss, foreign traffic while operational) assume
  // nothing about liveness and restart from scratch.
  if (!keep_candidates) {
    candidates_ = {engine_.self_};
    fail_set_.clear();
  }
  joins_.clear();
  last_commit_id_ = 0;
  engine_.trace(util::TraceEvent::kGatherEnter,
                static_cast<int64_t>(candidates_.size()),
                static_cast<int64_t>(gathers_started_));
  send_join();
  engine_.host_.set_timer(protocol::kTimerJoin, engine_.cfg_.timeouts.join);
  engine_.host_.set_timer(protocol::kTimerConsensus,
                          engine_.timers_.consensus());
  ACCELRING_LOG_INFO(kTag, "p%u: entering gather (#%llu)",
                     unsigned{engine_.self_},
                     static_cast<unsigned long long>(gathers_started_));
}

void Membership::send_join() {
  JoinMsg join;
  join.sender = engine_.self_;
  join.old_ring_id = old_ring_.ring_id;
  join.proc_set = sorted(candidates_);
  join.fail_set = sorted(fail_set_);
  join.quarantine_set = quarantine_.export_set();
  joins_[engine_.self_] = join;  // we trivially "received" our own join
  engine_.host_.multicast(protocol::kSockData, encode(join));
}

void Membership::on_join(const JoinMsg& join) {
  if (engine_.state_ == State::kIdle) return;
  if (join.sender == engine_.self_) return;
  if (quarantine_.state(join.sender) != QuarantineState::kHealthy) {
    // A quarantined member's Join is a probe: evidence it is alive and
    // still wants in. Count it toward the quarantine/probation clock but
    // stay deaf until the lifecycle lets it through.
    bool entered_probation = false;
    const bool still_blocked =
        quarantine_.filter_probe(join.sender, entered_probation);
    if (entered_probation) {
      engine_.trace(util::TraceEvent::kProbation, join.sender);
      ACCELRING_LOG_INFO(kTag, "p%u: p%u entered probation",
                         unsigned{engine_.self_}, unsigned{join.sender});
    }
    if (still_blocked) return;
    // Probation served: fall through and treat this as a normal Join.
  }
  if (join.fail_set.end() !=
      std::find(join.fail_set.begin(), join.fail_set.end(), engine_.self_)) {
    // Someone considers us failed; let them proceed without us. We will
    // merge with their new ring later via foreign-message detection.
    return;
  }
  for (const auto& q : join.quarantine_set) {
    if (q.first == engine_.self_) {
      // The fleet quarantined *us*. Same posture as being in a fail set:
      // let them proceed; our own Joins are the probes that will earn
      // re-admission.
      return;
    }
  }
  if (engine_.state_ == State::kCommit || engine_.state_ == State::kRecover) {
    // Membership is already agreed and being installed: defer. Most such
    // joins are straggler retransmissions from the gather that produced the
    // agreement; aborting on them restarts the cycle every time and the
    // reformation never converges. A genuinely new process keeps
    // retransmitting its Join until we are operational again and respond,
    // and if the sender is a member that left our in-progress ring, the
    // stalled token rescues us via the token-loss timeout (which is shorter
    // than the sender's consensus timeout, so nobody is pruned meanwhile).
    return;
  }
  if (engine_.state_ != State::kGather) {
    // A Join reopens membership: someone wants a configuration that differs
    // from ours (new process, recovered process, healed partition).
    enter_gather();
  }

  note_epoch(ring_epoch(join.old_ring_id));
  bool changed = false;
  // Adopt the sender's quarantine verdicts (the stricter view wins) so a
  // member that missed the eviction cannot re-admit the victim for everyone.
  for (const auto& [qpid, qhold] : join.quarantine_set) {
    if (quarantine_.adopt(qpid, qhold)) {
      engine_.trace(util::TraceEvent::kQuarantine, qpid, qhold);
      if (candidates_.erase(qpid) > 0) changed = true;
    }
  }
  if (fail_set_.erase(join.sender) > 0) changed = true;  // alive after all
  if (candidates_.insert(join.sender).second) changed = true;
  for (ProcessId p : join.proc_set) {
    if (fail_set_.contains(p)) continue;
    if (quarantine_.blocked(p)) {
      // The sender advertises a member we hold in quarantine. Once our own
      // verdict has aged into probation, a peer that no longer blocks the
      // member is evidence the fleet released it — release too rather than
      // deadlock the gather on probe-count drift. A fresh quarantine is
      // never overridden this way.
      const bool sender_blocks =
          std::any_of(join.quarantine_set.begin(), join.quarantine_set.end(),
                      [p](const auto& q) { return q.first == p; });
      if (sender_blocks ||
          quarantine_.state(p) != QuarantineState::kProbation) {
        continue;  // keep it excluded
      }
      quarantine_.release(p);
    }
    if (candidates_.insert(p).second) changed = true;
  }
  for (ProcessId p : join.fail_set) {
    // Adopt failure verdicts from processes we want to form a ring with.
    if (p == engine_.self_) continue;
    if (fail_set_.insert(p).second) {
      candidates_.erase(p);
      changed = true;
    }
  }
  joins_[join.sender] = join;
  if (changed) send_join();
  check_consensus();
}

bool Membership::join_matches(ProcessId pid) const {
  const auto it = joins_.find(pid);
  if (it == joins_.end()) return false;
  const JoinMsg& join = it->second;
  return join.proc_set == sorted(candidates_) &&
         join.fail_set == sorted(fail_set_);
}

void Membership::check_consensus() {
  if (engine_.state_ != State::kGather) return;
  for (ProcessId p : candidates_) {
    if (!join_matches(p)) return;
  }
  // Consensus: every candidate agrees on (proc_set, fail_set).
  engine_.set_state(State::kCommit);
  engine_.host_.cancel_timer(protocol::kTimerJoin);
  engine_.host_.set_timer(protocol::kTimerConsensus,
                          engine_.timers_.consensus());
  ACCELRING_LOG_INFO(kTag, "p%u: consensus on %zu members",
                     unsigned{engine_.self_}, candidates_.size());
  if (*candidates_.begin() == engine_.self_) start_commit();
}

// ---------------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------------

void Membership::start_commit() {
  commit_ = CommitTokenMsg{};
  commit_.new_ring_id = make_ring_id(max_epoch_seen_ + 1, engine_.self_);
  // The proposed epoch is now spoken for: if this attempt dies and we gather
  // again, the next proposal must use a fresh ring id. Persisted before the
  // commit token circulates, so the claim survives our own crash.
  note_epoch(ring_epoch(commit_.new_ring_id));
  commit_.token_id = 1;
  commit_.rotation = 0;
  for (ProcessId p : candidates_) {
    CommitEntry entry;
    entry.pid = p;
    commit_.members.push_back(entry);
  }
  fill_my_entry(commit_);
  last_commit_id_ = commit_.token_id;
  pass_commit(commit_);
}

void Membership::fill_my_entry(CommitTokenMsg& commit) {
  for (CommitEntry& entry : commit.members) {
    if (entry.pid != engine_.self_) continue;
    entry.old_ring_id = old_ring_.ring_id;
    entry.old_aru = old_source().local_aru();
    entry.old_high_seq = old_source().high_seq();
    entry.old_safe_line =
        have_snapshot_ ? old_safe_line_ : engine_.safe_line_;
    entry.filled = true;
    return;
  }
  assert(false && "self not in commit token");
}

protocol::RecvBuffer& Membership::old_source() {
  return have_snapshot_ ? old_buffer_ : engine_.buffer_;
}

void Membership::pass_commit(CommitTokenMsg commit) {
  // Successor in the proposed ring order (sorted pids), wrapping around.
  const auto& members = commit.members;
  size_t my_pos = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i].pid == engine_.self_) my_pos = i;
  }
  const ProcessId next = members[(my_pos + 1) % members.size()].pid;
  ++commit.token_id;
  engine_.host_.unicast(next, protocol::kSockToken, encode(commit));
}

void Membership::on_commit(const CommitTokenMsg& commit) {
  if (engine_.state_ != State::kGather && engine_.state_ != State::kCommit &&
      engine_.state_ != State::kRecover) {
    return;  // stale
  }
  std::set<ProcessId> pids;
  for (const CommitEntry& e : commit.members) pids.insert(e.pid);
  if (!pids.contains(engine_.self_)) return;
  if (commit.token_id <= last_commit_id_) return;  // duplicate
  if (stale_rings_.contains(commit.new_ring_id)) {
    // A commit token for an incarnation we already aborted (we re-entered
    // gather from its recovery). Accepting it again would wipe ordering
    // state while that ring's original token may still circulate.
    return;
  }
  // Learn the epoch even if we end up rejecting this proposal below, so the
  // next proposal we create cannot reuse a ring id that is already live.
  note_epoch(ring_epoch(commit.new_ring_id));

  if (pids != candidates_) {
    // The proposed membership no longer matches what we agreed to.
    enter_gather(/*keep_candidates=*/true);
    return;
  }
  last_commit_id_ = commit.token_id;

  if (commit.rotation == 0) {
    const bool i_created = commit.members.front().pid == engine_.self_ &&
                           commit.new_ring_id ==
                               make_ring_id(ring_epoch(commit.new_ring_id),
                                            engine_.self_);
    CommitTokenMsg next = commit;
    bool mine_filled = false;
    bool all_filled = true;
    for (const CommitEntry& e : next.members) {
      if (e.pid == engine_.self_) mine_filled = e.filled;
      all_filled = all_filled && e.filled;
    }
    if (i_created && mine_filled) {
      // First rotation complete: distribute the full table.
      if (!all_filled) {
        enter_gather();  // should not happen; be safe
        return;
      }
      next.rotation = 1;
      commit_ = next;
      enter_recover(next);
      pass_commit(next);
      // The representative originates the first ordering token of the new
      // ring. Commit token and ordering token travel the same socket, so
      // FIFO delivery means every member sees the commit token first.
      engine_.originate_token();
      return;
    }
    if (mine_filled) return;  // rotation-0 duplicate
    fill_my_entry(next);
    commit_ = next;
    engine_.set_state(State::kCommit);
    engine_.host_.cancel_timer(protocol::kTimerJoin);
    engine_.host_.set_timer(protocol::kTimerConsensus,
                            engine_.timers_.consensus());
    pass_commit(next);
    return;
  }

  // rotation == 1: the completed table.
  if (engine_.state_ == State::kRecover) return;  // already recovering
  commit_ = commit;
  enter_recover(commit);
  pass_commit(commit);
}

// ---------------------------------------------------------------------------
// Recover
// ---------------------------------------------------------------------------

void Membership::enter_recover(const CommitTokenMsg& commit) {
  commit_table_ = commit.members;
  // Every member's previous ring is subsumed by this merge: straggler
  // traffic from any of them (data retransmissions, in-flight tokens from
  // the other side of a healed partition) must not abort the recovery.
  for (const CommitEntry& e : commit.members) {
    stale_rings_.insert(e.old_ring_id);
  }

  if (!have_snapshot_) {
    old_buffer_ = std::move(engine_.buffer_);
    have_snapshot_ = true;
    old_safe_line_ = engine_.safe_line_;
  }
  stale_rings_.insert(old_ring_.ring_id);

  RingConfig new_ring;
  new_ring.ring_id = commit.new_ring_id;
  for (const CommitEntry& e : commit.members) {
    new_ring.members.push_back(e.pid);
  }
  engine_.ring_ = new_ring;
  engine_.my_index_ = new_ring.index_of(engine_.self_);
  engine_.reset_ordering_state();
  engine_.set_state(State::kRecover);
  engine_.host_.cancel_timer(protocol::kTimerJoin);
  engine_.host_.cancel_timer(protocol::kTimerConsensus);
  engine_.host_.set_timer(protocol::kTimerTokenLoss,
                          engine_.timers_.token_loss());
  eor_received_.clear();

  // Build the recovery send queue: every undiscarded old-ring message above
  // the minimum aru of my old ring's surviving members, then one Safe
  // end-of-recovery marker.
  engine_.recovery_queue_.clear();
  SeqNum min_aru = std::numeric_limits<SeqNum>::max();
  for (const CommitEntry& e : commit_table_) {
    if (e.old_ring_id == old_ring_.ring_id) {
      min_aru = std::min(min_aru, e.old_aru);
    }
  }
  if (min_aru == std::numeric_limits<SeqNum>::max()) min_aru = 0;
  size_t recovery_msgs = 0;
  for (SeqNum seq = min_aru + 1; seq <= old_buffer_.high_seq(); ++seq) {
    if (const DataMsg* msg = old_buffer_.find(seq)) {
      protocol::Engine::PendingMsg pm;
      pm.service = protocol::Service::kAgreed;
      pm.payload = encode(*msg);
      pm.recovered = true;
      engine_.recovery_queue_.push_back(std::move(pm));
      ++recovery_msgs;
    }
  }
  protocol::Engine::PendingMsg eor;
  eor.service = protocol::Service::kSafe;
  eor.recovered = true;
  engine_.recovery_queue_.push_back(std::move(eor));

  ACCELRING_LOG_INFO(
      kTag, "p%u: recovering on ring %llx (%zu members, %zu msgs to recover)",
      unsigned{engine_.self_},
      static_cast<unsigned long long>(commit.new_ring_id),
      commit.members.size(), recovery_msgs);
}

void Membership::on_recovered_delivery(const DataMsg& msg) {
  if (engine_.state_ != State::kRecover) return;
  if (msg.payload.empty()) {
    eor_received_.insert(msg.pid);
    if (eor_received_.size() == engine_.ring_.size()) finalize_recovery();
    return;
  }
  const auto inner = protocol::decode_data(msg.payload);
  if (!inner) return;
  if (inner->ring_id == old_ring_.ring_id) {
    old_buffer_.insert(*inner);
  }
}

void Membership::finalize_recovery() {
  // Phase 1: messages still deliverable under the old configuration's rules.
  // The Safe bound must be identical at every member or the same message
  // would land on different sides of the transitional configuration at
  // different members: use the MAX of the present old-ring members' safe
  // lines from the commit table — any single member's line proves receipt
  // by every old-ring member, including crashed ones.
  SeqNum shared_safe_line = 0;
  for (const CommitEntry& e : commit_table_) {
    if (e.old_ring_id == old_ring_.ring_id) {
      shared_safe_line = std::max(shared_safe_line, e.old_safe_line);
    }
  }
  auto deliver_old = [&](const DataMsg& msg) {
    protocol::Delivery d;
    d.sender = msg.pid;
    d.seq = msg.seq;
    d.service = msg.service;
    d.round = msg.round;
    d.ring_id = msg.ring_id;
    d.payload = msg.payload;
    if (requires_safe(msg.service)) {
      ++engine_.stats_.delivered_safe;
    } else {
      ++engine_.stats_.delivered_agreed;
    }
    engine_.host_.deliver(d);
  };
  while (const DataMsg* next =
             old_buffer_.next_deliverable(shared_safe_line)) {
    const DataMsg msg = *next;
    old_buffer_.mark_delivered();
    deliver_old(msg);
  }

  // Transitional configuration: members of the new ring that came with us
  // from the old ring (EVS §II).
  RingConfig transitional;
  transitional.ring_id = engine_.ring_.ring_id;
  for (ProcessId p : old_ring_.members) {
    if (engine_.ring_.index_of(p) >= 0) transitional.members.push_back(p);
  }
  engine_.trace(util::TraceEvent::kViewChange,
                static_cast<int64_t>(transitional.ring_id & 0xFFFFFFFF),
                -static_cast<int64_t>(transitional.members.size()));
  engine_.host_.on_configuration(
      protocol::ConfigurationChange{transitional, /*transitional=*/true});

  // Phase 2: everything else that survived, in sequence order, skipping
  // holes that no surviving member could fill.
  for (SeqNum seq = old_buffer_.delivered_up_to() + 1;
       seq <= old_buffer_.high_seq(); ++seq) {
    if (const DataMsg* msg = old_buffer_.find(seq)) deliver_old(*msg);
  }

  // New regular configuration; resume normal operation on the (already
  // running) new ring.
  old_ring_ = engine_.ring_;
  old_buffer_ = protocol::RecvBuffer{};
  have_snapshot_ = false;
  old_safe_line_ = 0;
  commit_table_.clear();
  eor_received_.clear();
  engine_.set_state(State::kOperational);
  ++engine_.stats_.memberships;
  for (ProcessId p : engine_.ring_.members) {
    if (quarantine_.note_installed(p)) {
      // Count the re-admission once ring-wide, on the lowest-pid peer —
      // mirroring the acting-member rule for the eviction itself, so one
      // quarantine lifecycle reads 1 quarantine / 1 readmit in the stats.
      ProcessId acting = protocol::kNoProcess;
      for (ProcessId m : engine_.ring_.members) {
        if (m != p) {
          acting = m;
          break;
        }
      }
      if (engine_.self_ == acting) ++engine_.stats_.readmits;
      engine_.trace(util::TraceEvent::kReadmit, p);
      ACCELRING_LOG_INFO(kTag, "p%u: re-admitted p%u after probation",
                         unsigned{engine_.self_}, unsigned{p});
    }
  }
  engine_.trace(util::TraceEvent::kViewChange,
                static_cast<int64_t>(engine_.ring_.ring_id & 0xFFFFFFFF),
                static_cast<int64_t>(engine_.ring_.size()));
  engine_.host_.on_configuration(
      protocol::ConfigurationChange{engine_.ring_, /*transitional=*/false});
  ACCELRING_LOG_INFO(kTag, "p%u: installed ring %llx with %zu members",
                     unsigned{engine_.self_},
                     static_cast<unsigned long long>(engine_.ring_.ring_id),
                     engine_.ring_.size());
}

// ---------------------------------------------------------------------------
// Triggers and timers
// ---------------------------------------------------------------------------

void Membership::on_foreign(ProcessId sender, RingId ring_id) {
  if (engine_.state_ == State::kIdle) return;
  if (ring_id == engine_.ring_.ring_id) return;
  if (stale_rings_.contains(ring_id)) return;
  if (sender != protocol::kNoProcess && quarantine_.blocked(sender)) {
    // The quarantined member runs on in its own singleton ring; its data
    // traffic must not tear the healthy ring down every few milliseconds.
    return;
  }
  note_epoch(ring_epoch(ring_id));
  if (engine_.state_ != State::kOperational) {
    // Already reforming membership. Our joins are multicast, so any live
    // foreign ring will be drawn into the gather; reacting here would let
    // straggler traffic from an aborted incarnation cancel the attempt in
    // progress and the next one, in a cycle that never converges.
    return;
  }
  ACCELRING_LOG_INFO(kTag, "p%u: foreign ring %llx detected",
                     unsigned{engine_.self_},
                     static_cast<unsigned long long>(ring_id));
  enter_gather();
}

void Membership::on_token_loss() { enter_gather(); }

void Membership::quarantine_evict(ProcessId victim) {
  if (engine_.state_ != State::kOperational) return;
  if (engine_.ring_.index_of(victim) < 0 || victim == engine_.self_) return;
  const uint32_t hold = quarantine_.quarantine(victim);
  ++engine_.stats_.quarantines;
  engine_.trace(util::TraceEvent::kQuarantine, victim,
                static_cast<int64_t>(hold));
  ACCELRING_LOG_INFO(
      kTag, "p%u: quarantining gray member p%u (hold %u probes)",
      unsigned{engine_.self_}, unsigned{victim}, unsigned{hold});
  // A deliberate membership change: everyone but the victim, victim in the
  // fail set. keep_candidates preserves exactly this proposal, so the
  // resulting gather converges on "the old ring minus the gray member"
  // instead of rediscovering the world from scratch.
  candidates_.clear();
  for (ProcessId p : engine_.ring_.members) {
    if (p != victim) candidates_.insert(p);
  }
  fail_set_.clear();
  fail_set_.insert(victim);
  enter_gather(/*keep_candidates=*/true);
}

void Membership::on_timer(protocol::TimerKind kind) {
  switch (kind) {
    case protocol::kTimerJoin:
      if (engine_.state_ == State::kGather) {
        send_join();
        check_consensus();
        if (engine_.state_ == State::kGather) {
          engine_.host_.set_timer(protocol::kTimerJoin,
                                  engine_.cfg_.timeouts.join);
        }
      }
      break;
    case protocol::kTimerConsensus:
      if (engine_.state_ == State::kGather) {
        // Move silent candidates to the fail set and retry.
        bool changed = false;
        for (auto it = candidates_.begin(); it != candidates_.end();) {
          if (*it != engine_.self_ && !joins_.contains(*it)) {
            fail_set_.insert(*it);
            it = candidates_.erase(it);
            changed = true;
          } else {
            ++it;
          }
        }
        if (changed) send_join();
        check_consensus();
        if (engine_.state_ == State::kGather) {
          engine_.host_.set_timer(protocol::kTimerConsensus,
                                  engine_.timers_.consensus());
        }
      } else if (engine_.state_ == State::kCommit) {
        enter_gather();  // commit token lost or a member died
      }
      break;
    default:
      break;
  }
}

}  // namespace accelring::membership
