// Umbrella header for the accelring library.
//
// Pull in the pieces you need individually for faster builds; this header
// exists for quick experiments and the examples.
//
//   protocol::Engine        — the ordering protocol (Original/Accelerated)
//   protocol::Host          — environment interface the engine runs against
//   membership::Membership  — gather/commit/recover (owned by the engine)
//   transport::UdpTransport — real sockets;  transport::SimHost — simulator
//   daemon::Daemon/Client   — client-daemon architecture + groups
//   rsm::Replica            — replicated state machines on top
//   harness::SimCluster     — simulated clusters for tests and benchmarks
#pragma once

#include "daemon/client.hpp"
#include "daemon/config_file.hpp"
#include "daemon/daemon.hpp"
#include "daemon/ipc_server.hpp"
#include "groups/group_layer.hpp"
#include "harness/sweep.hpp"
#include "membership/membership.hpp"
#include "protocol/engine.hpp"
#include "rsm/replica.hpp"
#include "transport/sim_host.hpp"
#include "transport/udp_transport.hpp"
#include "util/trace.hpp"
