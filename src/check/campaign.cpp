#include "check/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <set>

#include "check/client_fleet.hpp"
#include "harness/workload.hpp"
#include "multiring/ring_set.hpp"
#include "util/rng.hpp"

namespace accelring::check {
namespace {

/// Fault state shared between scheduled events and the drop filters.
struct FaultState {
  uint32_t token_drops_pending = 0;
};

simnet::Network::DropFilter token_drop_filter(
    std::shared_ptr<FaultState> fault) {
  return [fault = std::move(fault)](int, int, simnet::SocketId sock,
                                    const std::vector<std::byte>&) {
    if (sock != simnet::kTokenSocket || fault->token_drops_pending == 0) {
      return false;
    }
    --fault->token_drops_pending;
    return true;
  };
}

protocol::Service pick_service(uint32_t index) {
  // Mostly Agreed with a steady trickle of Safe, so both delivery paths and
  // both sides of the safe line are exercised under faults.
  return index % 5 == 0 ? protocol::Service::kSafe : protocol::Service::kAgreed;
}

/// Schedule the per-node workload chains on `eq`. `submit` is called with
/// (node, index) at each firing; indices are unique per node.
template <typename SubmitFn>
void arm_workload(simnet::EventQueue& eq, const RunOptions& opt,
                  SubmitFn submit) {
  const int64_t shots = opt.horizon / opt.submit_interval;
  for (int node = 0; node < opt.nodes; ++node) {
    // Phase-shift nodes so submissions do not synchronize.
    const Nanos phase =
        opt.submit_interval * node / std::max(opt.nodes, 1);
    for (int64_t k = 0; k < shots; ++k) {
      const Nanos at = opt.submit_interval * k + phase + util::usec(50);
      eq.schedule_after(at, [submit, node, k] {
        submit(node, static_cast<uint32_t>(k));
      });
    }
  }
}

RunResult run_single(const RunOptions& opt, const Schedule& schedule,
                     uint64_t seed) {
  const Scenario* sc = find_scenario(schedule.scenario);
  const bool with_clients = sc != nullptr && sc->client_level;
  RunOptions ropt = opt;
  if (with_clients) {
    // A client run must be able to overload its daemons within one burst:
    // clamp the engine queue so sends actually cross the high-water line.
    ropt.proto.max_pending = std::min<size_t>(ropt.proto.max_pending, 384);
  }
  harness::SimCluster cluster(ropt.nodes, ropt.fabric, ropt.proto,
                              ropt.profile, seed);
  ClusterOracle oracle(ropt.nodes);
  oracle.attach(cluster);

  // False-ejection audit (see RunResult::false_ejections): only meaningful
  // when no fault in the schedule justifies removing a node.
  bool ejection_justified = false;
  for (const FaultEvent& e : schedule.events) {
    ejection_justified = ejection_justified ||
                         e.kind == FaultKind::kPartition ||
                         e.kind == FaultKind::kCrash ||
                         e.kind == FaultKind::kRestart;
  }
  auto ejected = std::make_shared<std::set<uint64_t>>();
  if (!ejection_justified) {
    cluster.add_on_config([&cluster, ejected, nodes = ropt.nodes](
                              int, const protocol::ConfigurationChange& c) {
      if (c.transitional) return;
      for (int n = 0; n < nodes; ++n) {
        if (cluster.net().host_down(n)) continue;
        const auto pid = static_cast<protocol::ProcessId>(n);
        bool member = false;
        for (const auto m : c.config.members) member = member || m == pid;
        if (!member) ejected->insert(c.config.ring_id);
      }
    });
  }

  std::unique_ptr<ClientFleet> fleet;
  if (with_clients) {
    FleetOptions fopt;
    fopt.daemon.session_queue_limit = 48;
    fopt.seed = seed;
    fleet = std::make_unique<ClientFleet>(cluster, fopt);
  }
  ClientFleet* fleetp = fleet.get();

  cluster.start_static();

  auto fault = std::make_shared<FaultState>();
  cluster.net().set_drop_filter(token_drop_filter(fault));

  simnet::EventQueue& eq = cluster.eq();
  for (const FaultEvent& e : schedule.events) {
    eq.schedule_after(e.at, [&cluster, &oracle, fault, fleetp, e] {
      simnet::Network& net = cluster.net();
      switch (e.kind) {
        case FaultKind::kLossBurst:
          net.set_loss_rate(e.rate);
          cluster.eq().schedule_after(e.duration,
                                      [&net] { net.set_loss_rate(0); });
          break;
        case FaultKind::kTokenDrop:
          fault->token_drops_pending += e.count;
          break;
        case FaultKind::kPartition:
          for (int n : e.group) net.set_partition(n, 1);
          break;
        case FaultKind::kHeal:
          net.heal();
          break;
        case FaultKind::kCrash:
          if (!net.host_down(e.node)) {
            cluster.crash_node(e.node);
            oracle.note_crash(e.node);
            if (fleetp != nullptr) fleetp->on_crash(e.node);
          }
          break;
        case FaultKind::kRestart:
          // Droppable by design: a restart whose crash was shrunk away (or
          // that fires before it) is a no-op.
          if (net.host_down(e.node)) {
            cluster.restart_node(e.node);
            oracle.note_restart(e.node);
            if (fleetp != nullptr) fleetp->on_restart(e.node);
          }
          break;
        case FaultKind::kLatencyShift:
          net.set_extra_latency(e.extra_latency);
          cluster.eq().schedule_after(e.duration,
                                      [&net] { net.set_extra_latency(0); });
          break;
        case FaultKind::kOverload:
          if (fleetp != nullptr) fleetp->burst(e.node, e.count);
          break;
      }
    });
  }

  if (with_clients) {
    fleet->start(ropt.horizon);
  } else {
    arm_workload(eq, ropt,
                 [&cluster, &oracle, &ropt](int node, uint32_t index) {
      if (cluster.net().host_down(node)) return;
      oracle.note_submit(node, index);
      harness::PayloadStamp stamp;
      stamp.inject_time = cluster.eq().now();
      stamp.sender = static_cast<uint32_t>(node);
      stamp.index = index;
      cluster.submit(node, pick_service(index),
                     harness::make_payload(ropt.payload_size, stamp));
    });
  }

  // Heal everything at the horizon so the drain can converge.
  eq.schedule_after(ropt.horizon, [&cluster, fault] {
    cluster.net().heal();
    cluster.net().set_loss_rate(0);
    cluster.net().set_extra_latency(0);
    fault->token_drops_pending = 0;
  });

  cluster.run_until(ropt.horizon + ropt.drain);

  const harness::ClusterStats stats = cluster.stats();
  oracle.finalize(&stats);

  RunResult res;
  res.ok = oracle.ok();
  res.violations = oracle.violations();
  res.delivered = oracle.observed();
  res.false_ejections = ejected->size();
  if (fleet) {
    const FleetReport fr = fleet->finalize();
    res.client_delivered = fr.delivered;
    res.ok = res.ok && fr.ok;
    for (const Violation& v : fr.violations) res.violations.push_back(v);
  }
  const std::vector<const std::vector<Violation>*> lists = {&res.violations};
  res.report = join_reports(lists);
  return res;
}

RunResult run_multi(const RunOptions& opt, const Schedule& schedule,
                    uint64_t seed) {
  multiring::MultiRingConfig mcfg;
  mcfg.rings = opt.rings;
  mcfg.nodes_per_ring = opt.nodes;
  mcfg.fabric = opt.fabric;
  mcfg.proto = opt.proto;
  mcfg.profile = opt.profile;
  mcfg.merge_batch = opt.merge_batch;
  mcfg.skip_interval = opt.skip_interval;
  mcfg.seed = seed;
  multiring::RingSet rings(mcfg);

  std::vector<std::unique_ptr<ClusterOracle>> oracles;
  for (int r = 0; r < opt.rings; ++r) {
    oracles.push_back(std::make_unique<ClusterOracle>(
        opt.nodes, "ring " + std::to_string(r)));
    oracles.back()->attach(rings.ring(r));
  }

  MergedOracle merged(opt.nodes);
  if (opt.inject_merge_bug) {
    // Mutation: swap adjacent pairs of node 1's merged stream before the
    // oracle sees them — a deliberate total-order bug the oracles must
    // catch (and the shrinker must reduce).
    auto held = std::make_shared<
        std::optional<std::pair<int, protocol::Delivery>>>();
    rings.add_on_merged([&merged, held](int node, int ring,
                                        const protocol::Delivery& d, Nanos) {
      if (node != 1) {
        merged.on_merged(node, ring, d);
        return;
      }
      if (!held->has_value()) {
        *held = std::make_pair(ring, d);
        return;
      }
      merged.on_merged(node, ring, d);
      merged.on_merged(node, (*held)->first, (*held)->second);
      held->reset();
    });
  } else {
    merged.attach(rings);
  }

  rings.start_static();

  auto fault = std::make_shared<FaultState>();
  for (int r = 0; r < opt.rings; ++r) {
    rings.ring(r).net().set_drop_filter(token_drop_filter(fault));
  }

  simnet::EventQueue& eq = rings.eq();
  for (const FaultEvent& e : schedule.events) {
    eq.schedule_after(e.at, [&rings, &oracles, &eq, fault, e] {
      switch (e.kind) {
        case FaultKind::kLossBurst:
          for (int r = 0; r < rings.num_rings(); ++r) {
            rings.ring(r).net().set_loss_rate(e.rate);
          }
          eq.schedule_after(e.duration, [&rings] {
            for (int r = 0; r < rings.num_rings(); ++r) {
              rings.ring(r).net().set_loss_rate(0);
            }
          });
          break;
        case FaultKind::kTokenDrop:
          fault->token_drops_pending += e.count;
          break;
        case FaultKind::kPartition:
          for (int r = 0; r < rings.num_rings(); ++r) {
            for (int n : e.group) rings.ring(r).net().set_partition(n, 1);
          }
          break;
        case FaultKind::kHeal:
          for (int r = 0; r < rings.num_rings(); ++r) {
            rings.ring(r).net().heal();
          }
          break;
        case FaultKind::kCrash:
          if (!rings.node_down(e.node)) {
            rings.crash_node(e.node);
            for (auto& oracle : oracles) oracle->note_crash(e.node);
          }
          break;
        case FaultKind::kRestart:
          // Cold restart is single-ring only: a restarted node's merged
          // stream would legitimately hold gaps (messages delivered while
          // it was down), which the merged-prefix oracle must not excuse.
          break;
        case FaultKind::kLatencyShift:
          for (int r = 0; r < rings.num_rings(); ++r) {
            rings.ring(r).net().set_extra_latency(e.extra_latency);
          }
          eq.schedule_after(e.duration, [&rings] {
            for (int r = 0; r < rings.num_rings(); ++r) {
              rings.ring(r).net().set_extra_latency(0);
            }
          });
          break;
        case FaultKind::kOverload:
          // Client-level fault; client scenarios are single-ring only.
          break;
      }
    });
  }

  arm_workload(eq, opt, [&rings, &oracles, &opt](int node, uint32_t index) {
    if (rings.node_down(node)) return;
    const int ring = static_cast<int>(index) % opt.rings;
    oracles[static_cast<size_t>(ring)]->note_submit(node, index);
    harness::PayloadStamp stamp;
    stamp.inject_time = rings.eq().now();
    stamp.sender = static_cast<uint32_t>(node);
    stamp.index = index;
    rings.submit(node, ring, pick_service(index),
                 harness::make_payload(opt.payload_size, stamp));
  });

  eq.schedule_after(opt.horizon, [&rings, fault] {
    for (int r = 0; r < rings.num_rings(); ++r) {
      rings.ring(r).net().heal();
      rings.ring(r).net().set_loss_rate(0);
      rings.ring(r).net().set_extra_latency(0);
    }
    fault->token_drops_pending = 0;
  });

  rings.run_until(opt.horizon + opt.drain);

  RunResult res;
  res.ok = true;
  for (int r = 0; r < opt.rings; ++r) {
    const harness::ClusterStats stats = rings.ring(r).stats();
    oracles[static_cast<size_t>(r)]->finalize(&stats);
    res.delivered += oracles[static_cast<size_t>(r)]->observed();
    res.ok = res.ok && oracles[static_cast<size_t>(r)]->ok();
    for (const Violation& v : oracles[static_cast<size_t>(r)]->violations()) {
      res.violations.push_back(v);
    }
  }
  merged.finalize();
  res.ok = res.ok && merged.ok();
  for (const Violation& v : merged.violations()) res.violations.push_back(v);
  std::vector<const std::vector<Violation>*> lists = {&res.violations};
  res.report = join_reports(lists);
  return res;
}

}  // namespace

protocol::ProtocolConfig fast_proto_config() {
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  return cfg;
}

RunResult run_schedule(const RunOptions& opt, const Schedule& schedule,
                       uint64_t seed) {
  return opt.rings > 1 ? run_multi(opt, schedule, seed)
                       : run_single(opt, schedule, seed);
}

Schedule shrink(const RunOptions& opt, const Schedule& schedule,
                uint64_t seed) {
  Schedule best = schedule;
  bool improved = true;
  while (improved && !best.events.empty()) {
    improved = false;
    for (Schedule& cand : shrink_candidates(best)) {
      if (!run_schedule(opt, cand, seed).ok) {
        best = std::move(cand);
        improved = true;
        break;
      }
    }
  }
  return best;
}

CampaignResult run_campaign(const CampaignOptions& opt) {
  CampaignResult result;
  size_t scenario_index = 0;
  for (const Scenario& sc : scenarios()) {
    const size_t idx = scenario_index++;
    if (!opt.only.empty()) {
      bool wanted = false;
      for (const std::string& name : opt.only) wanted = wanted || name == sc.name;
      if (!wanted) continue;
    }
    if (opt.run.rings > 1 && !sc.multiring_safe) continue;

    std::vector<uint64_t> seeds;
    for (int i = 0; i < opt.seeds_per_scenario; ++i) {
      seeds.push_back(opt.seed_base + static_cast<uint64_t>(i));
    }
    for (uint64_t s : opt.extra_seeds) seeds.push_back(s);

    int scenario_failures = 0;
    for (uint64_t seed : seeds) {
      // The schedule derives from (scenario, seed) alone, so a failure
      // reproduces from the printed pair.
      uint64_t sm = seed * 1000003ULL + idx;
      const uint64_t gen_seed = util::splitmix64(sm);
      const Schedule schedule =
          sc.make(gen_seed, opt.run.nodes, opt.run.horizon);
      const RunResult run = run_schedule(opt.run, schedule, seed);
      ++result.runs;
      result.delivered += run.delivered;
      result.false_ejections += run.false_ejections;
      if (run.ok) continue;

      ++result.failures;
      ++scenario_failures;
      std::fprintf(stderr,
                   "campaign FAILURE scenario=%s seed=%llu rings=%d\n  %s\n",
                   sc.name, static_cast<unsigned long long>(seed),
                   opt.run.rings, describe(schedule).c_str());
      for (const Violation& v : run.violations) {
        std::fprintf(stderr, "  violation: %s\n", v.what.c_str());
      }
      if (result.cases.size() < 8) {
        FailureCase fc;
        fc.scenario = sc.name;
        fc.seed = seed;
        fc.schedule = schedule;
        fc.shrunk = opt.shrink_failures ? shrink(opt.run, schedule, seed)
                                        : schedule;
        fc.report = run.report;
        if (opt.shrink_failures) {
          std::fprintf(stderr, "  shrunk to: %s\n",
                       describe(fc.shrunk).c_str());
        }
        result.cases.push_back(std::move(fc));
      }
    }
    if (opt.verbose) {
      std::fprintf(stderr, "campaign scenario=%-22s rings=%d seeds=%zu %s\n",
                   sc.name, opt.run.rings, seeds.size(),
                   scenario_failures == 0 ? "ok" : "FAILED");
    }
  }
  return result;
}

}  // namespace accelring::check
