#include "check/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <set>

#include "check/client_fleet.hpp"
#include "check/durability_oracle.hpp"
#include "check/kv_oracle.hpp"
#include "storage/replica_store.hpp"
#include "harness/workload.hpp"
#include "kv/workload.hpp"
#include "multiring/ring_set.hpp"
#include "obs/flight.hpp"
#include "util/rng.hpp"

namespace accelring::check {
namespace {

/// Fault state shared between scheduled events and the drop filters.
struct FaultState {
  uint32_t token_drops_pending = 0;
};

simnet::Network::DropFilter token_drop_filter(
    std::shared_ptr<FaultState> fault) {
  return [fault = std::move(fault)](int, int, simnet::SocketId sock,
                                    const std::vector<std::byte>&) {
    if (sock != simnet::kTokenSocket || fault->token_drops_pending == 0) {
      return false;
    }
    --fault->token_drops_pending;
    return true;
  };
}

protocol::Service pick_service(uint32_t index) {
  // Mostly Agreed with a steady trickle of Safe, so both delivery paths and
  // both sides of the safe line are exercised under faults.
  return index % 5 == 0 ? protocol::Service::kSafe : protocol::Service::kAgreed;
}

/// Schedule the per-node workload chains on `eq`. `submit` is called with
/// (node, index) at each firing; indices are unique per node.
template <typename SubmitFn>
void arm_workload(simnet::EventQueue& eq, const RunOptions& opt,
                  SubmitFn submit) {
  const int64_t shots = opt.horizon / opt.submit_interval;
  for (int node = 0; node < opt.nodes; ++node) {
    // Phase-shift nodes so submissions do not synchronize.
    const Nanos phase =
        opt.submit_interval * node / std::max(opt.nodes, 1);
    for (int64_t k = 0; k < shots; ++k) {
      const Nanos at = opt.submit_interval * k + phase + util::usec(50);
      eq.schedule_after(at, [submit, node, k] {
        submit(node, static_cast<uint32_t>(k));
      });
    }
  }
}

RunResult run_single(const RunOptions& opt, const Schedule& schedule,
                     uint64_t seed) {
  const Scenario* sc = find_scenario(schedule.scenario);
  const bool with_clients = sc != nullptr && sc->client_level;
  const bool wan = sc != nullptr && sc->wan;
  RunOptions ropt = opt;
  if (with_clients) {
    // A client run must be able to overload its daemons within one burst:
    // clamp the engine queue so sends actually cross the high-water line.
    ropt.proto.max_pending = std::min<size_t>(ropt.proto.max_pending, 384);
  }
  const simnet::Topology topo = wan ? campaign_wan_topology(ropt.nodes)
                                    : simnet::Topology::single_dc(ropt.nodes);
  harness::SimCluster cluster(topo, ropt.fabric, ropt.proto, ropt.profile,
                              seed);
  // Metrics ride along only when a failure would dump them: recording is
  // perturbation-free (obs_determinism_test), so the verdict is unaffected,
  // and passing runs skip the registry allocations.
  if (!ropt.artifact_dir.empty()) cluster.enable_metrics();
  ClusterOracle oracle(ropt.nodes);
  oracle.attach(cluster);

  // Ejection audit (see RunResult::false_ejections). Partitions, crashes,
  // and restarts can legitimately remove any node from a configuration; a
  // gray fault (slow CPU, lossy or severed link) justifies removing only its
  // victim. Everyone else is healthy: a configuration that excludes a
  // healthy, reachable node counts as a false ejection, and a gray-failure
  // quarantine of one is a safety violation (checked after the run).
  bool any_ejection_justified = false;
  auto degraded = std::make_shared<std::set<int>>();
  for (const FaultEvent& e : schedule.events) {
    switch (e.kind) {
      case FaultKind::kPartition:
      case FaultKind::kCrash:
      case FaultKind::kRestart:
        any_ejection_justified = true;
        break;
      case FaultKind::kCpuMultiplier:
        if (e.rate > 1.0) degraded->insert(e.node);
        break;
      case FaultKind::kLinkLoss:
        degraded->insert(e.node);
        break;
      case FaultKind::kLinkDown:
        // A severed directed link degrades both endpoints' view of each
        // other; either may legitimately fall out of a configuration.
        degraded->insert(e.node);
        if (e.peer >= 0) degraded->insert(e.peer);
        break;
      case FaultKind::kRackPower:
      case FaultKind::kRackRestore:
      case FaultKind::kWanDown:
      case FaultKind::kPowerLossAll:
      case FaultKind::kPowerRestoreAll:
        // Correlated crashes and a severed inter-DC path can legitimately
        // remove any member from a configuration.
        any_ejection_justified = true;
        break;
      case FaultKind::kSwitchBrownout:
        // Every host behind the browned switch is degraded; a quarantine of
        // one is legitimate, of anyone else a violation.
        for (int h = 0; h < topo.num_hosts(); ++h) {
          if (topo.dc_of(h) == e.node) degraded->insert(h);
        }
        break;
      default:
        break;
    }
  }
  auto ejected = std::make_shared<std::set<uint64_t>>();
  if (!any_ejection_justified) {
    cluster.add_on_config([&cluster, ejected, degraded, nodes = ropt.nodes](
                              int, const protocol::ConfigurationChange& c) {
      if (c.transitional) return;
      for (int n = 0; n < nodes; ++n) {
        if (cluster.net().host_down(n) || degraded->contains(n)) continue;
        const auto pid = static_cast<protocol::ProcessId>(n);
        bool member = false;
        for (const auto m : c.config.members) member = member || m == pid;
        if (!member) ejected->insert(c.config.ring_id);
      }
    });
  }

  std::unique_ptr<ClientFleet> fleet;
  if (with_clients) {
    FleetOptions fopt;
    fopt.daemon.session_queue_limit = 48;
    fopt.seed = seed;
    fleet = std::make_unique<ClientFleet>(cluster, fopt);
  }
  ClientFleet* fleetp = fleet.get();

  cluster.start_static();

  auto fault = std::make_shared<FaultState>();
  cluster.net().set_drop_filter(token_drop_filter(fault));

  simnet::EventQueue& eq = cluster.eq();
  for (const FaultEvent& e : schedule.events) {
    eq.schedule_after(e.at, [&cluster, &oracle, fault, fleetp, e] {
      simnet::Network& net = cluster.net();
      switch (e.kind) {
        case FaultKind::kLossBurst:
          net.set_loss_rate(e.rate);
          cluster.eq().schedule_after(e.duration,
                                      [&net] { net.set_loss_rate(0); });
          break;
        case FaultKind::kTokenDrop:
          fault->token_drops_pending += e.count;
          break;
        case FaultKind::kPartition:
          for (int n : e.group) net.set_partition(n, 1);
          break;
        case FaultKind::kHeal:
          net.heal();
          break;
        case FaultKind::kCrash:
          if (!net.host_down(e.node)) {
            cluster.crash_node(e.node);
            oracle.note_crash(e.node);
            if (fleetp != nullptr) fleetp->on_crash(e.node);
          }
          break;
        case FaultKind::kRestart:
          // Droppable by design: a restart whose crash was shrunk away (or
          // that fires before it) is a no-op.
          if (net.host_down(e.node)) {
            cluster.restart_node(e.node);
            oracle.note_restart(e.node);
            if (fleetp != nullptr) fleetp->on_restart(e.node);
          }
          break;
        case FaultKind::kLatencyShift:
          // Shifts compose additively (overlapping congestion episodes add
          // up); the expiry subtracts exactly its own onset, and the fabric
          // clamps at 0 if a heal-all already absorbed it.
          net.add_extra_latency(e.extra_latency);
          cluster.eq().schedule_after(e.duration, [&net, e] {
            net.add_extra_latency(-e.extra_latency);
          });
          break;
        case FaultKind::kOverload:
          if (fleetp != nullptr) fleetp->burst(e.node, e.count);
          break;
        case FaultKind::kCpuMultiplier:
          // Droppable: rate 1 (or a multiplier shrunk away) is a no-op.
          cluster.process(e.node).set_cpu_multiplier(e.rate);
          break;
        case FaultKind::kLinkLoss:
          net.set_link_loss(e.peer, e.node, e.rate);
          break;
        case FaultKind::kLinkDown:
          net.set_link_down(e.peer, e.node, true);
          cluster.eq().schedule_after(e.duration, [&net, e] {
            net.set_link_down(e.peer, e.node, false);
          });
          break;
        case FaultKind::kReorder:
          net.set_reorder(e.rate, e.extra_latency);
          cluster.eq().schedule_after(e.duration,
                                      [&net] { net.set_reorder(0, 0); });
          break;
        case FaultKind::kDuplicate:
          net.set_duplicate(e.rate);
          cluster.eq().schedule_after(e.duration,
                                      [&net] { net.set_duplicate(0); });
          break;
        case FaultKind::kRackPower:
          // One power domain dies at the same instant.
          for (int n : e.group) {
            if (!net.host_down(n)) {
              cluster.crash_node(n);
              oracle.note_crash(n);
              if (fleetp != nullptr) fleetp->on_crash(n);
            }
          }
          break;
        case FaultKind::kRackRestore:
          // Droppable like kRestart: hosts that were never crashed (or whose
          // power-off was shrunk away) are skipped.
          for (int n : e.group) {
            if (net.host_down(n)) {
              cluster.restart_node(n);
              oracle.note_restart(n);
              if (fleetp != nullptr) fleetp->on_restart(n);
            }
          }
          break;
        case FaultKind::kSwitchBrownout:
          net.set_dc_brownout(e.node, e.rate, e.extra_latency);
          cluster.eq().schedule_after(e.duration, [&net, e] {
            net.set_dc_brownout(e.node, 0, 0);
          });
          break;
        case FaultKind::kWanDown:
          net.set_wan_down(e.node, e.peer, true);
          cluster.eq().schedule_after(e.duration, [&net, e] {
            net.set_wan_down(e.node, e.peer, false);
          });
          break;
        case FaultKind::kPowerLossAll:
          // Whole-cluster power loss works at the raw-submit level too (the
          // per-node disks carry the epoch stores); the durable scenarios
          // exercise it with full stores in run_kv.
          for (int n = 0; n < cluster.size(); ++n) {
            if (!net.host_down(n)) {
              cluster.crash_node(n);
              oracle.note_crash(n);
              if (fleetp != nullptr) fleetp->on_crash(n);
            }
          }
          break;
        case FaultKind::kPowerRestoreAll:
          for (int n = 0; n < cluster.size(); ++n) {
            if (net.host_down(n)) {
              cluster.restart_node(n);
              oracle.note_restart(n);
              if (fleetp != nullptr) fleetp->on_restart(n);
            }
          }
          break;
        case FaultKind::kDiskDesync:
          cluster.disk(e.node).set_crash_mode(
              e.count >= 2 ? storage::CrashMode::kReorder
                           : storage::CrashMode::kTorn);
          cluster.disk(e.node).set_write_cache_lies(true);
          break;
        case FaultKind::kDiskBitRot:
          cluster.disk(e.node).flip_bits(static_cast<int>(e.count), "shard");
          break;
        case FaultKind::kDiskFull:
          cluster.disk(e.node).set_capacity(1);
          cluster.eq().schedule_after(e.duration, [&cluster, e] {
            cluster.disk(e.node).set_capacity(0);
          });
          break;
        case FaultKind::kDiskStall:
          cluster.disk(e.node).stall_ops(static_cast<int>(e.count));
          break;
        case FaultKind::kRingOffline:
        case FaultKind::kMigrate:
          // Live-migration events drive the multi-ring runner; their
          // scenarios are skipped at rings == 1.
          break;
      }
    });
  }

  if (with_clients) {
    fleet->start(ropt.horizon);
  } else {
    arm_workload(eq, ropt,
                 [&cluster, &oracle, &ropt](int node, uint32_t index) {
      if (cluster.net().host_down(node)) return;
      oracle.note_submit(node, index);
      harness::PayloadStamp stamp;
      stamp.inject_time = cluster.eq().now();
      stamp.sender = static_cast<uint32_t>(node);
      stamp.index = index;
      cluster.submit(node, pick_service(index),
                     harness::make_payload(ropt.payload_size, stamp));
    });
  }

  // Heal everything at the horizon so the drain can converge. Gray faults
  // heal too: a quarantined member turns healthy here and probes its way
  // back through probation during the drain.
  eq.schedule_after(ropt.horizon, [&cluster, fault] {
    cluster.net().heal();
    cluster.net().set_loss_rate(0);
    cluster.net().set_extra_latency(0);
    cluster.net().clear_link_faults();  // WAN links up, brownouts off too
    for (int n = 0; n < cluster.size(); ++n) {
      // Back to the *constructed* speed: heterogeneous topologies keep their
      // hardware through a heal (1.0 on homogeneous clusters, as before).
      cluster.process(n).set_cpu_multiplier(cluster.base_cpu_multiplier(n));
    }
    fault->token_drops_pending = 0;
  });

  cluster.run_until(ropt.horizon + ropt.drain);

  const harness::ClusterStats stats = cluster.stats();
  oracle.finalize(&stats);

  RunResult res;
  res.ok = oracle.ok();
  res.violations = oracle.violations();
  res.delivered = oracle.observed();
  res.false_ejections = ejected->size();
  res.quarantines = stats.quarantines();
  res.readmits = stats.readmits();
  // Healthy-member quarantine audit: every pid any engine's membership layer
  // ever quarantined (read from the quarantine log, which — unlike the trace
  // ring buffer — never wraps) must have been the target of a gray fault.
  // Crash/partition/restart schedules are exempt: membership churn there can
  // hand the detector a legitimately torn ring.
  if (!any_ejection_justified) {
    std::set<protocol::ProcessId> blamed;
    for (int n = 0; n < ropt.nodes; ++n) {
      for (const protocol::ProcessId v :
           cluster.engine(n).quarantine_victims()) {
        blamed.insert(v);
      }
    }
    for (const protocol::ProcessId v : blamed) {
      if (degraded->contains(static_cast<int>(v))) continue;
      res.ok = false;
      res.violations.push_back(Violation{
          "healthy member quarantined: node " + std::to_string(v) +
          " was gray-failure evicted but no fault degraded it"});
    }
  }
  if (fleet) {
    const FleetReport fr = fleet->finalize();
    res.client_delivered = fr.delivered;
    res.ok = res.ok && fr.ok;
    for (const Violation& v : fr.violations) res.violations.push_back(v);
  }
  const std::vector<const std::vector<Violation>*> lists = {&res.violations};
  res.report = join_reports(lists);
  if (!res.ok && !ropt.artifact_dir.empty()) {
    const obs::MetricsRegistry merged = cluster.merged_metrics();
    obs::FlightRecord record;
    record.scenario = schedule.scenario;
    record.seed = seed;
    record.captured_at = cluster.eq().now();
    for (const Violation& v : res.violations) {
      record.violations.push_back(v.what);
    }
    for (int n = 0; n < ropt.nodes; ++n) {
      obs::FlightNode fn;
      fn.name = "node" + std::to_string(n);
      fn.events = cluster.tracer(n).snapshot();
      record.nodes.push_back(std::move(fn));
    }
    record.metrics = &merged;
    res.artifact_path = obs::dump_flight(record, ropt.artifact_dir);
  }
  return res;
}

/// KV-level run: a full KvService + SessionWorkload + KvOracle on a single
/// cluster, with the ClusterOracle still watching the protocol underneath.
/// The workload keeps issuing through the drain's first half, so reads and
/// leases are exercised across the heal.
RunResult run_kv(const RunOptions& opt, const Schedule& schedule,
                 uint64_t seed) {
  const Scenario* sc = find_scenario(schedule.scenario);
  const bool wan = sc != nullptr && sc->wan;
  const bool durable = sc != nullptr && sc->durable;
  const simnet::Topology topo = wan ? campaign_wan_topology(opt.nodes)
                                    : simnet::Topology::single_dc(opt.nodes);
  harness::SimCluster cluster(topo, opt.fabric, opt.proto, opt.profile, seed);
  if (!opt.artifact_dir.empty()) cluster.enable_metrics();
  ClusterOracle oracle(opt.nodes);
  oracle.attach(cluster);

  kv::ServiceConfig scfg;
  scfg.shards = 1;
  scfg.preload_keys = 0;  // the KvOracle needs a fully observed history
  if (durable) {
    // Every (node, shard) replica persists to the node's SimDisk. The file
    // prefix starts with "shard" so kDiskBitRot (which targets that prefix)
    // corrupts WAL/checkpoint files but never the epoch file beside them.
    scfg.store_factory = [&cluster](int node, int shard) {
      return std::make_unique<storage::ReplicaStore>(
          cluster.disk(node), "shard" + std::to_string(shard));
    };
  }
  kv::KvService service(cluster, scfg);
  if (!opt.artifact_dir.empty()) service.bind_metrics();
  KvOracle kv_oracle;
  DurabilityOracle dur_oracle;
  DurabilityOracle* durp = nullptr;
  if (durable) {
    // One set of service observers fans out to both oracles (the KvOracle
    // first, so mutation history is recorded before durability bookkeeping
    // reads the same event).
    kv_oracle.bind(service);
    dur_oracle.bind(service);
    durp = &dur_oracle;
    service.set_on_applied([&kv_oracle, &dur_oracle](
                               int node, int shard,
                               const kv::AppliedOp& applied, Nanos at) {
      kv_oracle.on_applied(node, shard, applied, at);
      dur_oracle.on_applied(node, shard, applied, at);
    });
    service.set_on_lease_grant(
        [&kv_oracle](int node, int shard, const kv::LeaseId& id, Nanos at) {
          kv_oracle.on_lease_grant(node, shard, id, at);
        });
    service.set_on_outcome(
        [&kv_oracle, &dur_oracle](int node,
                                  const kv::Frontend::Outcome& outcome) {
          kv_oracle.on_outcome(node, outcome);
          dur_oracle.on_outcome(node, outcome);
        });
  } else {
    kv_oracle.attach(service);
  }

  kv::WorkloadConfig wcfg;
  wcfg.sessions = 64;
  wcfg.keys = 128;
  wcfg.zipf_s = 0.9;
  wcfg.read_fraction = 0.7;  // write-heavy vs the bench: more history churn
  wcfg.value_size = opt.payload_size;
  wcfg.base_rate = 4000;
  wcfg.peak_factor = 1.5;
  wcfg.period = opt.horizon;
  wcfg.start = util::msec(5);
  wcfg.stop = opt.horizon + opt.drain / 2;
  wcfg.churn_per_sec = 20;
  wcfg.op_timeout = util::msec(30);
  // WAN: a quorum round-trip crosses 3 ms links, and a rack-power view
  // change takes several WAN token rotations — give ops headroom to retry
  // past it instead of timing out spuriously.
  if (wan) wcfg.op_timeout = util::msec(80);
  wcfg.measure_from = 0;
  wcfg.seed = seed;
  kv::SessionWorkload workload(service, wcfg);

  cluster.start_static();
  workload.start();

  auto fault = std::make_shared<FaultState>();
  cluster.net().set_drop_filter(token_drop_filter(fault));

  simnet::EventQueue& eq = cluster.eq();
  for (const FaultEvent& e : schedule.events) {
    eq.schedule_after(e.at, [&cluster, &oracle, &service, &kv_oracle, durp,
                             fault, e] {
      simnet::Network& net = cluster.net();
      // The crash choreography (shared by single-node, rack, and
      // whole-cluster power events): the durability oracle snapshots the
      // node's applied versions before the crash resolves un-fsynced disk
      // state, and judges the recovered versions right after the restart.
      const auto crash_one = [&](int n) {
        if (net.host_down(n)) return;
        if (durp != nullptr) durp->note_crash(n);
        cluster.crash_node(n);
        oracle.note_crash(n);
        service.on_crash(n);
      };
      const auto restart_one = [&](int n) {
        if (!net.host_down(n)) return false;
        cluster.restart_node(n);
        oracle.note_restart(n);
        service.on_restart(n);
        kv_oracle.note_restart(n);
        if (durp != nullptr) durp->note_restart(n);
        return true;
      };
      switch (e.kind) {
        case FaultKind::kLossBurst:
          net.set_loss_rate(e.rate);
          cluster.eq().schedule_after(e.duration,
                                      [&net] { net.set_loss_rate(0); });
          break;
        case FaultKind::kTokenDrop:
          fault->token_drops_pending += e.count;
          break;
        case FaultKind::kPartition:
          for (int n : e.group) net.set_partition(n, 1);
          break;
        case FaultKind::kHeal:
          net.heal();
          break;
        case FaultKind::kCrash:
          crash_one(e.node);
          break;
        case FaultKind::kRestart:
          restart_one(e.node);
          break;
        case FaultKind::kRackPower:
          for (int n : e.group) crash_one(n);
          break;
        case FaultKind::kRackRestore:
          for (int n : e.group) restart_one(n);
          break;
        case FaultKind::kPowerLossAll:
          for (int n = 0; n < cluster.size(); ++n) crash_one(n);
          break;
        case FaultKind::kPowerRestoreAll: {
          bool any = false;
          for (int n = 0; n < cluster.size(); ++n) {
            any = restart_one(n) || any;
          }
          // The whole cluster is back: judge what survived against the
          // committed history, then roll the KV oracle onto the revived
          // lineage. Skipped when the power loss was shrunk away.
          if (any && durp != nullptr) {
            durp->note_cluster_recovery(&kv_oracle);
          }
          break;
        }
        case FaultKind::kDiskDesync:
          cluster.disk(e.node).set_crash_mode(
              e.count >= 2 ? storage::CrashMode::kReorder
                           : storage::CrashMode::kTorn);
          cluster.disk(e.node).set_write_cache_lies(true);
          if (durp != nullptr) {
            durp->note_disk_unsafe(e.node, "lying write cache");
          }
          break;
        case FaultKind::kDiskBitRot:
          cluster.disk(e.node).flip_bits(static_cast<int>(e.count), "shard");
          if (durp != nullptr) durp->note_disk_unsafe(e.node, "bit rot");
          break;
        case FaultKind::kDiskFull:
          cluster.disk(e.node).set_capacity(1);
          if (durp != nullptr) durp->note_disk_unsafe(e.node, "enospc");
          cluster.eq().schedule_after(e.duration, [&cluster, e] {
            cluster.disk(e.node).set_capacity(0);
          });
          break;
        case FaultKind::kDiskStall:
          cluster.disk(e.node).stall_ops(static_cast<int>(e.count));
          if (durp != nullptr) durp->note_disk_unsafe(e.node, "io stall");
          break;
        default:
          // The kv scenarios only emit the faults above; anything else in a
          // hand-written schedule is ignored here.
          break;
      }
    });
  }

  eq.schedule_after(opt.horizon, [&cluster, fault] {
    cluster.net().heal();
    cluster.net().set_loss_rate(0);
    cluster.net().set_extra_latency(0);
    cluster.net().clear_link_faults();  // WAN links up, brownouts off too
    fault->token_drops_pending = 0;
  });

  cluster.run_until(opt.horizon + opt.drain);

  const harness::ClusterStats stats = cluster.stats();
  oracle.finalize(&stats);
  kv_oracle.finalize();
  if (durp != nullptr) durp->finalize();

  RunResult res;
  res.ok = oracle.ok() && kv_oracle.ok() &&
           (durp == nullptr || durp->ok());
  res.violations = oracle.violations();
  for (const Violation& v : kv_oracle.violations()) {
    res.violations.push_back(v);
  }
  if (durp != nullptr) {
    for (const Violation& v : durp->violations()) {
      res.violations.push_back(v);
    }
  }
  res.delivered = oracle.observed();
  res.quarantines = stats.quarantines();
  res.readmits = stats.readmits();
  res.client_delivered = workload.stats().completed;
  // Every kv scenario holds a crash, so the healthy-quarantine and
  // false-ejection audits of run_single do not apply here.
  const std::vector<const std::vector<Violation>*> lists = {&res.violations};
  res.report = join_reports(lists);
  if (!res.ok && !opt.artifact_dir.empty()) {
    const obs::MetricsRegistry merged = cluster.merged_metrics();
    obs::FlightRecord record;
    record.scenario = schedule.scenario;
    record.seed = seed;
    record.captured_at = cluster.eq().now();
    for (const Violation& v : res.violations) {
      record.violations.push_back(v.what);
    }
    // The injected storage-fault schedule, verbatim: what each node's disk
    // actually did to the data (desync windows, torn-write resolutions, bit
    // flips, ENOSPC) is exactly what a durability failure reproduces from.
    for (int n = 0; n < opt.nodes; ++n) {
      for (const std::string& line : cluster.disk(n).fault_log()) {
        record.storage_faults.push_back("node" + std::to_string(n) + ": " +
                                        line);
      }
    }
    for (int n = 0; n < opt.nodes; ++n) {
      obs::FlightNode fn;
      fn.name = "node" + std::to_string(n);
      fn.events = cluster.tracer(n).snapshot();
      record.nodes.push_back(std::move(fn));
    }
    record.metrics = &merged;
    res.artifact_path = obs::dump_flight(record, opt.artifact_dir);
  }
  return res;
}

/// The migration campaigns' keyed workload: a small universe of shared
/// stream ids (so every key sees many messages from many submitters across
/// a handoff), uniform by default, triangular-skewed toward key 0 for the
/// hot-shard scenarios. Deterministic in (node, index) alone, so the
/// MergedOracle recomputes the routing key from the payload stamp.
uint64_t keyed_stream_id(bool zipf, int node, uint32_t index) {
  constexpr uint64_t kKeyUniverse = 64;
  const uint64_t h =
      multiring::mix64((static_cast<uint64_t>(node) << 32) | index);
  if (!zipf) return h % kKeyUniverse;
  // min of two uniforms: mass concentrates at small ids, key 0 hottest.
  return std::min(h % kKeyUniverse, (h >> 32) % kKeyUniverse);
}

RunResult run_multi(const RunOptions& opt, const Schedule& schedule,
                    uint64_t seed) {
  const Scenario* msc = find_scenario(schedule.scenario);
  const bool migration = msc != nullptr && msc->migration;
  const bool zipf = msc != nullptr && msc->zipf_keys;
  multiring::MultiRingConfig mcfg;
  if (msc != nullptr && msc->wan) mcfg.topology = campaign_wan_topology(opt.nodes);
  mcfg.rings = opt.rings;
  mcfg.nodes_per_ring = opt.nodes;
  mcfg.fabric = opt.fabric;
  mcfg.proto = opt.proto;
  mcfg.profile = opt.profile;
  mcfg.merge_batch = opt.merge_batch;
  mcfg.skip_interval = opt.skip_interval;
  mcfg.seed = seed;
  // A kRingOffline event is a construction-time hint: the last ring starts
  // owning no hash space (its skip daemon still keeps the merge rotating)
  // until a kMigrate add brings it in.
  for (const FaultEvent& e : schedule.events) {
    if (e.kind == FaultKind::kRingOffline) {
      mcfg.active_rings = std::max(1, opt.rings - 1);
    }
  }
  multiring::RingSet rings(mcfg);
  if (opt.inject_handoff_bug) rings.inject_stale_flush(1);
  // Same contract as run_single: metrics only feed the flight recorder.
  if (!opt.artifact_dir.empty()) rings.enable_metrics();

  std::vector<std::unique_ptr<ClusterOracle>> oracles;
  for (int r = 0; r < opt.rings; ++r) {
    oracles.push_back(std::make_unique<ClusterOracle>(
        opt.nodes, "ring " + std::to_string(r)));
    oracles.back()->attach(rings.ring(r));
  }

  MergedOracle merged(opt.nodes);
  if (opt.inject_merge_bug) {
    // Mutation: swap adjacent pairs of node 1's merged stream before the
    // oracle sees them — a deliberate total-order bug the oracles must
    // catch (and the shrinker must reduce).
    auto held = std::make_shared<
        std::optional<std::pair<int, protocol::Delivery>>>();
    rings.add_on_merged([&merged, held](int node, int ring,
                                        const protocol::Delivery& d, Nanos) {
      if (node != 1) {
        merged.on_merged(node, ring, d);
        return;
      }
      if (!held->has_value()) {
        *held = std::make_pair(ring, d);
        return;
      }
      merged.on_merged(node, ring, d);
      merged.on_merged(node, (*held)->first, (*held)->second);
      held->reset();
    });
  } else {
    merged.attach(rings);
  }
  if (migration) {
    // Handoff audit: recompute each delivery's routing key from the payload
    // stamp (submit_keyed mixes the raw stream id before the arc lookup, so
    // the oracle mixes identically).
    merged.enable_handoff_audit(
        [zipf](const protocol::Delivery& d)
            -> std::optional<MergedOracle::KeyedPayload> {
          harness::PayloadStamp stamp;
          if (!harness::parse_payload(d.payload, stamp)) return std::nullopt;
          MergedOracle::KeyedPayload kp;
          kp.key = multiring::mix64(keyed_stream_id(
              zipf, static_cast<int>(stamp.sender), stamp.index));
          kp.submitter = stamp.sender;
          kp.index = stamp.index;
          return kp;
        });
  }

  rings.start_static();

  auto fault = std::make_shared<FaultState>();
  for (int r = 0; r < opt.rings; ++r) {
    rings.ring(r).net().set_drop_filter(token_drop_filter(fault));
  }

  simnet::EventQueue& eq = rings.eq();
  for (const FaultEvent& e : schedule.events) {
    eq.schedule_after(e.at, [&rings, &oracles, &eq, fault, e] {
      switch (e.kind) {
        case FaultKind::kLossBurst:
          for (int r = 0; r < rings.num_rings(); ++r) {
            rings.ring(r).net().set_loss_rate(e.rate);
          }
          eq.schedule_after(e.duration, [&rings] {
            for (int r = 0; r < rings.num_rings(); ++r) {
              rings.ring(r).net().set_loss_rate(0);
            }
          });
          break;
        case FaultKind::kTokenDrop:
          fault->token_drops_pending += e.count;
          break;
        case FaultKind::kPartition:
          for (int r = 0; r < rings.num_rings(); ++r) {
            for (int n : e.group) rings.ring(r).net().set_partition(n, 1);
          }
          break;
        case FaultKind::kHeal:
          for (int r = 0; r < rings.num_rings(); ++r) {
            rings.ring(r).net().heal();
          }
          break;
        case FaultKind::kCrash:
          if (!rings.node_down(e.node)) {
            rings.crash_node(e.node);
            for (auto& oracle : oracles) oracle->note_crash(e.node);
          }
          break;
        case FaultKind::kRestart:
          // Cold restart is single-ring only: a restarted node's merged
          // stream would legitimately hold gaps (messages delivered while
          // it was down), which the merged-prefix oracle must not excuse.
          break;
        case FaultKind::kLatencyShift:
          // Additive, so overlapping shifts (wan_latency_surge) compose and
          // each expiry removes only its own contribution.
          for (int r = 0; r < rings.num_rings(); ++r) {
            rings.ring(r).net().add_extra_latency(e.extra_latency);
          }
          eq.schedule_after(e.duration, [&rings, e] {
            for (int r = 0; r < rings.num_rings(); ++r) {
              rings.ring(r).net().add_extra_latency(-e.extra_latency);
            }
          });
          break;
        case FaultKind::kOverload:
          // Client-level fault; client scenarios are single-ring only.
          break;
        case FaultKind::kCpuMultiplier:
        case FaultKind::kLinkLoss:
        case FaultKind::kLinkDown:
          // Targeted gray faults: their scenarios are not multiring-safe.
          break;
        case FaultKind::kReorder:
          for (int r = 0; r < rings.num_rings(); ++r) {
            rings.ring(r).net().set_reorder(e.rate, e.extra_latency);
          }
          eq.schedule_after(e.duration, [&rings] {
            for (int r = 0; r < rings.num_rings(); ++r) {
              rings.ring(r).net().set_reorder(0, 0);
            }
          });
          break;
        case FaultKind::kDuplicate:
          for (int r = 0; r < rings.num_rings(); ++r) {
            rings.ring(r).net().set_duplicate(e.rate);
          }
          eq.schedule_after(e.duration, [&rings] {
            for (int r = 0; r < rings.num_rings(); ++r) {
              rings.ring(r).net().set_duplicate(0);
            }
          });
          break;
        case FaultKind::kRackPower:
        case FaultKind::kRackRestore:
        case FaultKind::kSwitchBrownout:
        case FaultKind::kWanDown:
          // Correlated crash/restart and topology faults: their scenarios
          // are not multiring-safe (restart is single-ring only, and the
          // merged-prefix oracle cannot excuse a whole rack's gap).
          break;
        case FaultKind::kPowerLossAll:
        case FaultKind::kPowerRestoreAll:
        case FaultKind::kDiskDesync:
        case FaultKind::kDiskBitRot:
        case FaultKind::kDiskFull:
        case FaultKind::kDiskStall:
          // Storage faults drive the durable KV scenarios, which are
          // single-ring only.
          break;
        case FaultKind::kRingOffline:
          // Construction-time hint, consumed before the run started.
          break;
        case FaultKind::kMigrate: {
          // Droppable by design: an empty plan (adding an active ring,
          // removing the last active one, moving a span onto itself) or a
          // migration already in flight makes start_migration a no-op.
          if (!rings.migration_idle()) break;
          const multiring::ShardMap& map = rings.shards();
          const int k = rings.num_rings();
          const auto ring_arg = [k](int r) { return r < 0 ? k - 1 : r % k; };
          multiring::MigrationPlan plan;
          switch (e.count) {
            case 1:
              plan = map.plan_add_ring(ring_arg(e.peer));
              break;
            case 2:
              plan = map.plan_remove_ring(ring_arg(e.node));
              break;
            case 3:
              plan = map.plan_move_fraction(ring_arg(e.node),
                                            ring_arg(e.peer), e.rate);
              break;
            case 4: {
              // Rebalance: the ring owning stream id 0 (the zipf-hot key) is
              // the hottest; the smallest ownership share takes the slice.
              const int hot = map.ring_of_key(multiring::mix64(0));
              int coldest = 0;
              for (int r = 1; r < k; ++r) {
                if (map.owned_fraction(r) < map.owned_fraction(coldest)) {
                  coldest = r;
                }
              }
              plan = map.plan_move_fraction(hot, coldest, e.rate);
              break;
            }
            default:
              break;
          }
          (void)rings.start_migration(plan);
          break;
        }
      }
    });
  }

  if (migration) {
    // Keyed workload through the per-node ShardRouters: the router (not the
    // caller) picks the ring, holding moving keys across each handoff, so
    // the per-ring self-delivery bookkeeping does not apply here — the
    // MergedOracle's handoff audit owns the continuity obligations.
    arm_workload(eq, opt, [&rings, &opt, zipf](int node, uint32_t index) {
      if (rings.node_down(node)) return;
      harness::PayloadStamp stamp;
      stamp.inject_time = rings.eq().now();
      stamp.sender = static_cast<uint32_t>(node);
      stamp.index = index;
      rings.submit_keyed(node, keyed_stream_id(zipf, node, index),
                         pick_service(index),
                         harness::make_payload(opt.payload_size, stamp));
    });
  } else {
    arm_workload(eq, opt, [&rings, &oracles, &opt](int node, uint32_t index) {
      if (rings.node_down(node)) return;
      const int ring = static_cast<int>(index) % opt.rings;
      oracles[static_cast<size_t>(ring)]->note_submit(node, index);
      harness::PayloadStamp stamp;
      stamp.inject_time = rings.eq().now();
      stamp.sender = static_cast<uint32_t>(node);
      stamp.index = index;
      rings.submit(node, ring, pick_service(index),
                   harness::make_payload(opt.payload_size, stamp));
    });
  }

  eq.schedule_after(opt.horizon, [&rings, fault] {
    for (int r = 0; r < rings.num_rings(); ++r) {
      rings.ring(r).net().heal();
      rings.ring(r).net().set_loss_rate(0);
      rings.ring(r).net().set_extra_latency(0);
      rings.ring(r).net().clear_link_faults();
    }
    fault->token_drops_pending = 0;
  });

  rings.run_until(opt.horizon + opt.drain);

  // No gray fault runs against a ring set, so any quarantine here hit a
  // healthy member by definition (crash/partition schedules excepted — their
  // churn can legitimately tear a ring mid-verdict).
  bool churn_justified = false;
  for (const FaultEvent& e : schedule.events) {
    churn_justified = churn_justified || e.kind == FaultKind::kPartition ||
                      e.kind == FaultKind::kCrash;
  }

  RunResult res;
  res.ok = true;
  for (int r = 0; r < opt.rings; ++r) {
    const harness::ClusterStats stats = rings.ring(r).stats();
    res.quarantines += stats.quarantines();
    res.readmits += stats.readmits();
    if (!churn_justified) {
      for (int n = 0; n < opt.nodes; ++n) {
        for (const protocol::ProcessId v :
             rings.ring(r).engine(n).quarantine_victims()) {
          res.ok = false;
          res.violations.push_back(Violation{
              "ring " + std::to_string(r) +
              ": healthy member quarantined: node " + std::to_string(v)});
        }
      }
    }
    oracles[static_cast<size_t>(r)]->finalize(&stats);
    res.delivered += oracles[static_cast<size_t>(r)]->observed();
    res.ok = res.ok && oracles[static_cast<size_t>(r)]->ok();
    for (const Violation& v : oracles[static_cast<size_t>(r)]->violations()) {
      res.violations.push_back(v);
    }
  }
  merged.finalize();
  res.ok = res.ok && merged.ok();
  for (const Violation& v : merged.violations()) res.violations.push_back(v);
  // Handoff liveness: once the last migration completed (controller idle),
  // every held keyed submission must have flushed to its destination. A
  // migration still in flight at the end of the drain (e.g. started during
  // an unhealed partition after shrinking) legitimately keeps its holds.
  if (migration && rings.migration_idle() && rings.held_messages() != 0) {
    res.ok = false;
    res.violations.push_back(Violation{
        "migration completed but " + std::to_string(rings.held_messages()) +
        " keyed message(s) still held un-flushed"});
  }
  std::vector<const std::vector<Violation>*> lists = {&res.violations};
  res.report = join_reports(lists);
  if (!res.ok && !opt.artifact_dir.empty()) {
    const obs::MetricsRegistry reg = rings.merged_metrics();
    obs::FlightRecord record;
    record.scenario = schedule.scenario;
    record.seed = seed;
    record.captured_at = rings.eq().now();
    for (const Violation& v : res.violations) {
      record.violations.push_back(v.what);
    }
    for (int r = 0; r < opt.rings; ++r) {
      for (int n = 0; n < opt.nodes; ++n) {
        obs::FlightNode fn;
        fn.name =
            "ring" + std::to_string(r) + "/node" + std::to_string(n);
        fn.events = rings.ring(r).tracer(n).snapshot();
        record.nodes.push_back(std::move(fn));
      }
    }
    record.metrics = &reg;
    res.artifact_path = obs::dump_flight(record, opt.artifact_dir);
  }
  return res;
}

}  // namespace

protocol::ProtocolConfig fast_proto_config() {
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  return cfg;
}

protocol::ProtocolConfig campaign_proto_config() {
  protocol::ProtocolConfig cfg = fast_proto_config();
  cfg.gray.enabled = true;
  return cfg;
}

protocol::ProtocolConfig wan_proto_config() {
  protocol::ProtocolConfig cfg = campaign_proto_config();
  // A token rotation on campaign_wan_topology crosses up to three 3 ms WAN
  // links each way; the LAN-tuned timeouts would declare loss on every
  // rotation. Stretched statics keep the failure detector sound, and the
  // adaptive estimator (the feature WAN delay motivates) tightens them back
  // toward the measured rotation once the ring is steady.
  cfg.timeouts.token_retransmit = util::msec(25);
  cfg.timeouts.token_loss = util::msec(80);
  cfg.timeouts.join = util::msec(15);
  cfg.timeouts.consensus = util::msec(160);
  cfg.adaptive_timeouts = true;
  return cfg;
}

RunResult run_schedule(const RunOptions& opt, const Schedule& schedule,
                       uint64_t seed) {
  const Scenario* sc = find_scenario(schedule.scenario);
  RunOptions ropt = opt;
  if (sc != nullptr && sc->wan) {
    // WAN scenarios swap in the rescaled timeouts and give the drain room
    // for a post-heal view change over 3 ms links. Callers that already ask
    // for a longer drain keep theirs.
    ropt.proto = wan_proto_config();
    ropt.drain = std::max<Nanos>(ropt.drain, util::msec(450));
  }
  if (ropt.rings > 1) return run_multi(ropt, schedule, seed);
  if (sc != nullptr && sc->kv_level) return run_kv(ropt, schedule, seed);
  return run_single(ropt, schedule, seed);
}

Schedule shrink(const RunOptions& opt, const Schedule& schedule,
                uint64_t seed) {
  // Candidate runs must not spam artifacts: the failing run already dumped
  // its black box, and a shrink sweep replays hundreds of near-duplicates.
  RunOptions quiet = opt;
  quiet.artifact_dir.clear();
  Schedule best = schedule;
  bool improved = true;
  while (improved && !best.events.empty()) {
    improved = false;
    for (Schedule& cand : shrink_candidates(best)) {
      if (!run_schedule(quiet, cand, seed).ok) {
        best = std::move(cand);
        improved = true;
        break;
      }
    }
  }
  return best;
}

CampaignResult run_campaign(const CampaignOptions& opt) {
  CampaignResult result;
  size_t scenario_index = 0;
  for (const Scenario& sc : scenarios()) {
    const size_t idx = scenario_index++;
    if (!opt.only.empty()) {
      bool wanted = false;
      for (const std::string& name : opt.only) wanted = wanted || name == sc.name;
      if (!wanted) continue;
    }
    if (opt.run.rings > 1 && !sc.multiring_safe) continue;
    // Migration scenarios need a ring set to migrate between.
    if (opt.run.rings <= 1 && sc.migration) continue;

    std::vector<uint64_t> seeds;
    for (int i = 0; i < opt.seeds_per_scenario; ++i) {
      seeds.push_back(opt.seed_base + static_cast<uint64_t>(i));
    }
    for (uint64_t s : opt.extra_seeds) seeds.push_back(s);

    int scenario_failures = 0;
    for (uint64_t seed : seeds) {
      // The schedule derives from (scenario, seed) alone, so a failure
      // reproduces from the printed pair.
      uint64_t sm = seed * 1000003ULL + idx;
      const uint64_t gen_seed = util::splitmix64(sm);
      const Schedule schedule =
          sc.make(gen_seed, opt.run.nodes, opt.run.horizon);
      const RunResult run = run_schedule(opt.run, schedule, seed);
      ++result.runs;
      result.delivered += run.delivered;
      result.false_ejections += run.false_ejections;
      result.quarantines += run.quarantines;
      result.readmits += run.readmits;
      if (run.ok) continue;

      ++result.failures;
      ++scenario_failures;
      std::fprintf(stderr,
                   "campaign FAILURE scenario=%s seed=%llu rings=%d\n  %s\n",
                   sc.name, static_cast<unsigned long long>(seed),
                   opt.run.rings, describe(schedule).c_str());
      for (const Violation& v : run.violations) {
        std::fprintf(stderr, "  violation: %s\n", v.what.c_str());
      }
      if (!run.artifact_path.empty()) {
        std::fprintf(stderr, "  flight record: %s\n",
                     run.artifact_path.c_str());
      }
      if (result.cases.size() < 8) {
        FailureCase fc;
        fc.scenario = sc.name;
        fc.seed = seed;
        fc.schedule = schedule;
        fc.shrunk = opt.shrink_failures ? shrink(opt.run, schedule, seed)
                                        : schedule;
        fc.report = run.report;
        if (opt.shrink_failures) {
          std::fprintf(stderr, "  shrunk to: %s\n",
                       describe(fc.shrunk).c_str());
        }
        result.cases.push_back(std::move(fc));
      }
    }
    if (opt.verbose) {
      std::fprintf(stderr, "campaign scenario=%-22s rings=%d seeds=%zu %s\n",
                   sc.name, opt.run.rings, seeds.size(),
                   scenario_failures == 0 ? "ok" : "FAILED");
    }
  }
  return result;
}

}  // namespace accelring::check
