#include "check/schedule.hpp"

#include <sstream>

#include "util/rng.hpp"

namespace accelring::check {
namespace {

using util::Rng;

/// A fault time inside the active window [horizon/10, horizon * 7/10] (so
/// the tail of the horizon still carries faulted traffic before the drain).
Nanos fault_time(Rng& rng, Nanos horizon) {
  const Nanos lo = horizon / 10;
  const Nanos hi = horizon * 7 / 10;
  return rng.range(lo, hi);
}

/// A crash / restart victim. Node 0 is excluded: it creates the pre-agreed
/// static start ring (epoch 1), and a cold restart of creator `i` can
/// legitimately recreate ring id (1, i) — excluding node 0 keeps ring ids
/// unique per run so the oracles' cross-node checks stay strict.
int victim(Rng& rng, int nodes) {
  return static_cast<int>(rng.range(1, nodes - 1));
}

Schedule loss_bursts(uint64_t seed, int nodes, Nanos horizon) {
  (void)nodes;
  Rng rng(seed);
  Schedule s{"loss_bursts", {}};
  const int bursts = static_cast<int>(rng.range(1, 3));
  for (int i = 0; i < bursts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLossBurst;
    e.at = fault_time(rng, horizon);
    e.rate = 0.05 + rng.uniform() * 0.35;
    e.duration = util::msec(rng.range(5, 40));
    s.events.push_back(std::move(e));
  }
  return s;
}

Schedule token_drops(uint64_t seed, int nodes, Nanos horizon) {
  (void)nodes;
  Rng rng(seed);
  Schedule s{"token_drops", {}};
  const int drops = static_cast<int>(rng.range(1, 3));
  for (int i = 0; i < drops; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kTokenDrop;
    e.at = fault_time(rng, horizon);
    e.count = static_cast<uint32_t>(rng.range(1, 5));
    s.events.push_back(std::move(e));
  }
  return s;
}

/// Split off a random non-empty strict subset of the nodes.
std::vector<int> random_group(Rng& rng, int nodes) {
  std::vector<int> group;
  const int take = static_cast<int>(rng.range(1, nodes - 1));
  // Reservoir-free pick: walk nodes, take until quota met.
  for (int n = 0; n < nodes && static_cast<int>(group.size()) < take; ++n) {
    const int left = nodes - n;
    const int need = take - static_cast<int>(group.size());
    if (rng.below(static_cast<uint64_t>(left)) <
        static_cast<uint64_t>(need)) {
      group.push_back(n);
    }
  }
  return group;
}

Schedule make_partition(uint64_t seed, int nodes, Nanos horizon,
                        bool delayed_heal) {
  Rng rng(seed);
  Schedule s{delayed_heal ? "partition_delayed_heal" : "partition", {}};
  FaultEvent cut;
  cut.kind = FaultKind::kPartition;
  cut.at = fault_time(rng, horizon);
  cut.group = random_group(rng, nodes);
  FaultEvent heal;
  heal.kind = FaultKind::kHeal;
  heal.at = delayed_heal
                ? horizon - horizon / 10  // heal only just before the drain
                : std::min<Nanos>(cut.at + util::msec(rng.range(30, 80)),
                                  horizon);
  s.events.push_back(std::move(cut));
  s.events.push_back(std::move(heal));
  return s;
}

Schedule partition(uint64_t seed, int nodes, Nanos horizon) {
  return make_partition(seed, nodes, horizon, /*delayed_heal=*/false);
}

Schedule partition_delayed_heal(uint64_t seed, int nodes, Nanos horizon) {
  return make_partition(seed, nodes, horizon, /*delayed_heal=*/true);
}

Schedule crash(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"crash", {}};
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.at = fault_time(rng, horizon);
  e.node = victim(rng, nodes);
  s.events.push_back(std::move(e));
  return s;
}

Schedule crash_restart(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"crash_restart", {}};
  FaultEvent down;
  down.kind = FaultKind::kCrash;
  down.at = fault_time(rng, horizon);
  down.node = victim(rng, nodes);
  FaultEvent up;
  up.kind = FaultKind::kRestart;
  up.node = down.node;
  up.at = std::min<Nanos>(down.at + util::msec(rng.range(20, 80)), horizon);
  s.events.push_back(std::move(down));
  s.events.push_back(std::move(up));
  return s;
}

Schedule latency_shift(uint64_t seed, int nodes, Nanos horizon) {
  (void)nodes;
  Rng rng(seed);
  Schedule s{"latency_shift", {}};
  const int shifts = static_cast<int>(rng.range(1, 2));
  for (int i = 0; i < shifts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLatencyShift;
    e.at = fault_time(rng, horizon);
    e.extra_latency = util::msec(rng.range(1, 8));
    e.duration = util::msec(rng.range(20, 60));
    s.events.push_back(std::move(e));
  }
  return s;
}

Schedule overload(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"overload", {}};
  const int bursts = static_cast<int>(rng.range(1, 3));
  for (int i = 0; i < bursts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kOverload;
    e.at = fault_time(rng, horizon);
    e.node = static_cast<int>(rng.range(0, nodes - 1));
    e.count = static_cast<uint32_t>(rng.range(200, 600));
    s.events.push_back(std::move(e));
  }
  return s;
}

Schedule reconnect_storm(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"reconnect_storm", {}};
  // Any node may be the victim, node 0 included: the persisted epoch store
  // guarantees a cold restart never recreates a ring id, so the oracles'
  // strict cross-node checks hold even for the static-start creator.
  const int victims = static_cast<int>(rng.range(1, 2));
  for (int i = 0; i < victims; ++i) {
    FaultEvent down;
    down.kind = FaultKind::kCrash;
    down.at = fault_time(rng, horizon);
    down.node = static_cast<int>(rng.range(0, nodes - 1));
    FaultEvent up;
    up.kind = FaultKind::kRestart;
    up.node = down.node;
    up.at = std::min<Nanos>(down.at + util::msec(rng.range(20, 60)), horizon);
    s.events.push_back(std::move(down));
    s.events.push_back(std::move(up));
  }
  return s;
}

Schedule straggler_cpu(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"straggler_cpu", {}};
  // One member turns gray: every instruction costs 4-12x. The gray-failure
  // detector should quarantine it; the oracles verify nobody healthy is
  // touched and the ring keeps delivering.
  FaultEvent slow;
  slow.kind = FaultKind::kCpuMultiplier;
  slow.at = fault_time(rng, horizon);
  slow.node = victim(rng, nodes);
  slow.rate = 4.0 + rng.uniform() * 8.0;
  s.events.push_back(std::move(slow));
  return s;
}

Schedule lossy_nic(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"lossy_nic", {}};
  // One member's receive path degrades: frames from every sender toward it
  // drop with probability 0.1-0.35 (an ingress NIC fault, invisible to the
  // symmetric loss model). The victim keeps requesting retransmissions every
  // rotation, which is exactly the signature the detector watches.
  FaultEvent loss;
  loss.kind = FaultKind::kLinkLoss;
  loss.at = fault_time(rng, horizon);
  loss.node = victim(rng, nodes);
  loss.peer = -1;  // every sender -> victim
  loss.rate = 0.10 + rng.uniform() * 0.25;
  s.events.push_back(std::move(loss));
  return s;
}

Schedule flapping_link(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"flapping_link", {}};
  // One directed link flaps down/up 3-6 times. Each down period is short
  // enough that token-loss recovery usually rides it out; the campaign
  // verifies ordering safety holds through the churn either way.
  const int node = victim(rng, nodes);
  const int peer = (node + 1 + static_cast<int>(rng.range(
                        0, nodes - 2))) % nodes;
  const int flaps = static_cast<int>(rng.range(3, 6));
  for (int i = 0; i < flaps; ++i) {
    FaultEvent down;
    down.kind = FaultKind::kLinkDown;
    down.at = fault_time(rng, horizon);
    down.node = node;
    down.peer = peer;
    down.duration = util::msec(rng.range(2, 12));
    s.events.push_back(std::move(down));
  }
  return s;
}

Schedule reorder_duplicate(uint64_t seed, int nodes, Nanos horizon) {
  (void)nodes;
  Rng rng(seed);
  Schedule s{"reorder_duplicate", {}};
  {
    FaultEvent e;
    e.kind = FaultKind::kReorder;
    e.at = fault_time(rng, horizon);
    e.rate = 0.05 + rng.uniform() * 0.20;
    e.extra_latency = util::usec(rng.range(50, 400));
    e.duration = util::msec(rng.range(20, 60));
    s.events.push_back(std::move(e));
  }
  if (rng.chance(0.7)) {
    FaultEvent e;
    e.kind = FaultKind::kDuplicate;
    e.at = fault_time(rng, horizon);
    e.rate = 0.05 + rng.uniform() * 0.15;
    e.duration = util::msec(rng.range(20, 60));
    s.events.push_back(std::move(e));
  }
  return s;
}

Schedule mixed(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"mixed", {}};
  {
    FaultEvent e;
    e.kind = FaultKind::kLossBurst;
    e.at = fault_time(rng, horizon);
    e.rate = 0.05 + rng.uniform() * 0.25;
    e.duration = util::msec(rng.range(5, 25));
    s.events.push_back(std::move(e));
  }
  {
    FaultEvent e;
    e.kind = FaultKind::kTokenDrop;
    e.at = fault_time(rng, horizon);
    e.count = static_cast<uint32_t>(rng.range(1, 3));
    s.events.push_back(std::move(e));
  }
  const int node = victim(rng, nodes);
  {
    FaultEvent e;
    e.kind = FaultKind::kCrash;
    e.at = fault_time(rng, horizon);
    e.node = node;
    s.events.push_back(std::move(e));
  }
  if (rng.chance(0.5)) {
    FaultEvent e;
    e.kind = FaultKind::kRestart;
    e.node = node;
    // Restart may land before the crash; the runner skips it then, which is
    // exactly the droppable-event property shrinking relies on.
    e.at = fault_time(rng, horizon);
    s.events.push_back(std::move(e));
  }
  return s;
}

Schedule kv_state_transfer_crash(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"kv_state_transfer_crash", {}};
  // A member crashes and cold-restarts, forcing a chunked state transfer;
  // node 0 — the lowest veteran, hence the transfer sender — then crashes
  // right after the restart, with good odds of dying mid-transfer. Both
  // victims may restart (the epoch store keeps ring ids unique even for the
  // static-start creator, the reconnect_storm precedent).
  FaultEvent down;
  down.kind = FaultKind::kCrash;
  down.at = fault_time(rng, horizon);
  down.node = victim(rng, nodes);
  FaultEvent up;
  up.kind = FaultKind::kRestart;
  up.node = down.node;
  up.at = std::min<Nanos>(down.at + util::msec(rng.range(20, 60)), horizon);
  FaultEvent sender_down;
  sender_down.kind = FaultKind::kCrash;
  sender_down.node = 0;
  sender_down.at =
      std::min<Nanos>(up.at + util::msec(rng.range(0, 10)), horizon);
  s.events.push_back(std::move(down));
  s.events.push_back(std::move(up));
  s.events.push_back(std::move(sender_down));
  if (rng.chance(0.7)) {
    FaultEvent sender_up;
    sender_up.kind = FaultKind::kRestart;
    sender_up.node = 0;
    sender_up.at = std::min<Nanos>(
        s.events.back().at + util::msec(rng.range(20, 50)), horizon);
    s.events.push_back(std::move(sender_up));
  }
  return s;
}

Schedule kv_lease_holder_crash(uint64_t seed, int nodes, Nanos horizon) {
  (void)nodes;
  Rng rng(seed);
  Schedule s{"kv_lease_holder_crash", {}};
  // Node 0 is the designated leaseholder of shard 0 in the initial view:
  // kill it while it serves lease reads. The survivors must revoke on the
  // view change, the successor's lease must wait out the guard, and the
  // oracle's exclusivity check must stay clean throughout.
  FaultEvent down;
  down.kind = FaultKind::kCrash;
  down.at = fault_time(rng, horizon);
  down.node = 0;
  const Nanos down_at = down.at;
  s.events.push_back(std::move(down));
  if (rng.chance(0.5)) {
    FaultEvent up;
    up.kind = FaultKind::kRestart;
    up.node = 0;
    up.at = std::min<Nanos>(down_at + util::msec(rng.range(30, 90)), horizon);
    s.events.push_back(std::move(up));
  }
  return s;
}

// --- WAN / correlated-fault scenarios (campaign_wan_topology) --------------

/// Random loss bursts, but on the 3-DC WAN topology: the retransmission and
/// failure-detection machinery rides them out across real link delay.
Schedule wan_loss_bursts(uint64_t seed, int nodes, Nanos horizon) {
  (void)nodes;
  Rng rng(seed);
  Schedule s{"wan_loss_bursts", {}};
  const int bursts = static_cast<int>(rng.range(1, 3));
  for (int i = 0; i < bursts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLossBurst;
    e.at = fault_time(rng, horizon);
    e.rate = 0.05 + rng.uniform() * 0.25;
    e.duration = util::msec(rng.range(5, 40));
    s.events.push_back(std::move(e));
  }
  return s;
}

/// Two deliberately *overlapping* latency shifts on the WAN topology. The
/// fabric composes shifts additively on top of the per-link WAN propagation
/// (add_extra_latency); the overlap is the regression surface for the old
/// overwrite bug, where the second onset erased the first and the first
/// expiry erased the second.
Schedule wan_latency_surge(uint64_t seed, int nodes, Nanos horizon) {
  (void)nodes;
  Rng rng(seed);
  Schedule s{"wan_latency_surge", {}};
  FaultEvent first;
  first.kind = FaultKind::kLatencyShift;
  first.at = fault_time(rng, horizon);
  first.extra_latency = util::msec(rng.range(1, 5));
  first.duration = util::msec(rng.range(40, 80));
  FaultEvent second;
  second.kind = FaultKind::kLatencyShift;
  second.at = std::min<Nanos>(first.at + first.duration / 2, horizon);
  second.extra_latency = util::msec(rng.range(1, 4));
  second.duration = util::msec(rng.range(30, 60));
  s.events.push_back(std::move(first));
  s.events.push_back(std::move(second));
  return s;
}

/// Pick one (dc, rack) power domain of the campaign topology. Deterministic
/// for a given (seed, nodes): the racks come from the topology (fixed) and
/// the index from the schedule rng.
std::vector<int> pick_rack(Rng& rng, int nodes) {
  const std::vector<std::vector<int>> racks =
      campaign_wan_topology(nodes).racks();
  std::vector<int> rack = racks[rng.below(racks.size())];
  // Never power off the whole cluster: keep at most nodes-2 victims so a
  // majority-ish remainder can keep a ring alive.
  while (static_cast<int>(rack.size()) > nodes - 2) rack.pop_back();
  return rack;
}

/// Rack power loss: every host in one rack crashes at the same instant, and
/// power returns 40-90 ms later (cold restarts through the epoch store).
Schedule rack_power(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"rack_power", {}};
  FaultEvent off;
  off.kind = FaultKind::kRackPower;
  off.at = fault_time(rng, horizon);
  off.group = pick_rack(rng, nodes);
  FaultEvent on;
  on.kind = FaultKind::kRackRestore;
  on.group = off.group;
  on.at = std::min<Nanos>(off.at + util::msec(rng.range(40, 90)), horizon);
  s.events.push_back(std::move(off));
  s.events.push_back(std::move(on));
  return s;
}

/// Switch brownout: one DC's switch degrades every port — elevated loss and
/// forwarding latency for a bounded window, then recovers.
Schedule switch_brownout(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"switch_brownout", {}};
  const int dcs = campaign_wan_topology(nodes).num_dcs;
  FaultEvent e;
  e.kind = FaultKind::kSwitchBrownout;
  e.at = fault_time(rng, horizon);
  e.node = static_cast<int>(rng.below(static_cast<uint64_t>(dcs)));
  e.rate = 0.05 + rng.uniform() * 0.10;
  e.extra_latency = util::msec(rng.range(1, 4));
  e.duration = util::msec(rng.range(30, 80));
  s.events.push_back(std::move(e));
  return s;
}

/// DC flap: one WAN link cycles down/up several times (routing is static, so
/// each down window black-holes that inter-DC path).
Schedule dc_flap(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"dc_flap", {}};
  const simnet::Topology topo = campaign_wan_topology(nodes);
  const simnet::WanLinkParams& link =
      topo.wan_links[rng.below(topo.wan_links.size())];
  const int flaps = static_cast<int>(rng.range(2, 4));
  for (int i = 0; i < flaps; ++i) {
    FaultEvent down;
    down.kind = FaultKind::kWanDown;
    down.at = fault_time(rng, horizon);
    down.node = link.dc_a;
    down.peer = link.dc_b;
    down.duration = util::msec(rng.range(4, 12));
    s.events.push_back(std::move(down));
  }
  return s;
}

/// The full KV stack across datacenters with a rack losing power mid-run:
/// leases, sessions, and state transfer all cross WAN links while a
/// correlated crash group (possibly including the leaseholder) cycles.
Schedule kv_wan_rack_power(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"kv_wan_rack_power", {}};
  FaultEvent off;
  off.kind = FaultKind::kRackPower;
  off.at = fault_time(rng, horizon);
  off.group = pick_rack(rng, nodes);
  FaultEvent on;
  on.kind = FaultKind::kRackRestore;
  on.group = off.group;
  on.at = std::min<Nanos>(off.at + util::msec(rng.range(40, 80)), horizon);
  s.events.push_back(std::move(off));
  s.events.push_back(std::move(on));
  return s;
}

// --- storage-fault scenarios (durable KV runs; see docs/ROBUSTNESS.md) -----

/// Whole-cluster power loss with honest disks: every node crashes at the
/// same instant and power returns 40-90 ms later. The WAL is fsynced before
/// every apply, so the DurabilityOracle demands *exact* recovery — every
/// node comes back at precisely the version it had applied.
Schedule kv_blackout(uint64_t seed, int nodes, Nanos horizon) {
  (void)nodes;
  Rng rng(seed);
  Schedule s{"kv_blackout", {}};
  FaultEvent off;
  off.kind = FaultKind::kPowerLossAll;
  off.at = fault_time(rng, horizon);
  FaultEvent on;
  on.kind = FaultKind::kPowerRestoreAll;
  on.at = std::min<Nanos>(off.at + util::msec(rng.range(40, 90)), horizon);
  s.events.push_back(std::move(off));
  s.events.push_back(std::move(on));
  return s;
}

/// Blackout with a lying write cache on a minority: their un-fsynced WAL
/// suffixes die torn (or flush-reordered) at the power loss. The desync
/// windows open strictly before the blackout and no other fault runs in
/// between, so no membership churn (epoch mints) lands on a lying disk.
/// Acked writes durable only on the liars are legitimately lost (the
/// oracle's *excused* count); anything a safe node applied must survive.
Schedule kv_blackout_torn(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"kv_blackout_torn", {}};
  // 1-2 lying disks, never node 0, always a minority.
  const int max_liars = std::max(1, std::min(2, nodes - 2));
  const int want = 1 + static_cast<int>(rng.below(
                           static_cast<uint64_t>(max_liars)));
  std::vector<int> liars;
  while (static_cast<int>(liars.size()) < want) {
    const int v = victim(rng, nodes);
    bool dup = false;
    for (const int l : liars) dup = dup || l == v;
    if (!dup) liars.push_back(v);
  }
  for (const int l : liars) {
    FaultEvent lie;
    lie.kind = FaultKind::kDiskDesync;
    lie.at = rng.range(horizon / 10, horizon * 4 / 10);
    lie.node = l;
    lie.count = 1 + static_cast<uint32_t>(rng.below(2));  // torn / reorder
    s.events.push_back(std::move(lie));
  }
  FaultEvent off;
  off.kind = FaultKind::kPowerLossAll;
  off.at = horizon / 2 + rng.range(0, horizon / 5);
  FaultEvent on;
  on.kind = FaultKind::kPowerRestoreAll;
  on.at = std::min<Nanos>(off.at + util::msec(rng.range(40, 90)), horizon);
  s.events.push_back(std::move(off));
  s.events.push_back(std::move(on));
  return s;
}

/// Durable bit rot: flip a few bits in one node's shard files (WAL or
/// checkpoint — never the epoch file), then crash and cold-restart that
/// node. Recovery must *reject* the corrupt tail (CRCs), fall back to the
/// longest valid prefix, and let peer state transfer close the rest; the
/// rot pairs with a single-node restart, never a blackout, so the truth
/// always survives on the majority.
Schedule kv_disk_bitrot(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"kv_disk_bitrot", {}};
  FaultEvent rot;
  rot.kind = FaultKind::kDiskBitRot;
  rot.at = fault_time(rng, horizon);
  rot.node = victim(rng, nodes);
  rot.count = 1 + static_cast<uint32_t>(rng.below(8));
  FaultEvent down;
  down.kind = FaultKind::kCrash;
  down.node = rot.node;
  down.at = std::min<Nanos>(rot.at + util::msec(rng.range(5, 30)), horizon);
  FaultEvent up;
  up.kind = FaultKind::kRestart;
  up.node = rot.node;
  up.at = std::min<Nanos>(down.at + util::msec(rng.range(20, 60)), horizon);
  s.events.push_back(std::move(rot));
  s.events.push_back(std::move(down));
  s.events.push_back(std::move(up));
  return s;
}

/// Disk stress: one node rides an ENOSPC window and an IO-stall burst, then
/// crashes and (usually) restarts. Failed WAL appends latch the store
/// broken until the next checkpoint heals it, so the victim may recover
/// behind its applied position — the oracle only demands the prefix
/// property there, and peers carry it forward.
Schedule kv_disk_stress(uint64_t seed, int nodes, Nanos horizon) {
  Rng rng(seed);
  Schedule s{"kv_disk_stress", {}};
  const int node = victim(rng, nodes);
  FaultEvent full;
  full.kind = FaultKind::kDiskFull;
  full.at = fault_time(rng, horizon);
  full.node = node;
  full.duration = util::msec(rng.range(10, 40));
  s.events.push_back(std::move(full));
  FaultEvent stall;
  stall.kind = FaultKind::kDiskStall;
  stall.at = fault_time(rng, horizon);
  stall.node = node;
  stall.count = static_cast<uint32_t>(rng.range(5, 30));
  s.events.push_back(std::move(stall));
  FaultEvent down;
  down.kind = FaultKind::kCrash;
  down.node = node;
  down.at = fault_time(rng, horizon);
  s.events.push_back(std::move(down));
  if (rng.chance(0.8)) {
    FaultEvent up;
    up.kind = FaultKind::kRestart;
    up.node = node;
    up.at = std::min<Nanos>(s.events.back().at + util::msec(rng.range(20, 60)),
                            horizon);
    s.events.push_back(std::move(up));
  }
  return s;
}

// --- live-migration scenarios (elastic multiring; see docs/MULTIRING.md) ---
//
// Ring indices in these events are schedule-time placeholders: the campaign
// runner resolves them against the run's ring count K (-1 = last ring,
// others modulo K), so one schedule replays at any K in the sweep. Every
// event is independently droppable: a kMigrate whose plan turns out empty
// (adding an already-active ring, moving a span onto itself) degrades to a
// no-op inside RingSet::start_migration.

/// Scale-out: the last ring starts offline (owning no hash space), then a
/// live migration brings it in mid-run while keyed traffic flows, with a
/// loss burst riding the handoff window.
Schedule ring_add_under_load(uint64_t seed, int nodes, Nanos horizon) {
  (void)nodes;
  Rng rng(seed);
  Schedule s{"ring_add_under_load", {}};
  FaultEvent offline;
  offline.kind = FaultKind::kRingOffline;
  offline.at = 0;
  offline.node = -1;  // last ring
  s.events.push_back(std::move(offline));
  FaultEvent add;
  add.kind = FaultKind::kMigrate;
  add.at = fault_time(rng, horizon);
  add.count = 1;   // mode: add ring
  add.peer = -1;   // the offline last ring
  s.events.push_back(std::move(add));
  if (rng.chance(0.6)) {
    FaultEvent loss;
    loss.kind = FaultKind::kLossBurst;
    loss.at = fault_time(rng, horizon);
    loss.rate = 0.05 + rng.uniform() * 0.20;
    loss.duration = util::msec(rng.range(5, 25));
    s.events.push_back(std::move(loss));
  }
  return s;
}

/// Scale-in: one ring is drained out of the ownership map mid-run — every
/// arc it owned migrates away under load, and the emptied ring keeps
/// participating in the merge (skips only).
Schedule ring_remove_under_load(uint64_t seed, int nodes, Nanos horizon) {
  (void)nodes;
  Rng rng(seed);
  Schedule s{"ring_remove_under_load", {}};
  FaultEvent rm;
  rm.kind = FaultKind::kMigrate;
  rm.at = fault_time(rng, horizon);
  rm.count = 2;  // mode: remove ring
  rm.node = static_cast<int>(rng.below(8));  // resolved modulo K at run time
  s.events.push_back(std::move(rm));
  if (rng.chance(0.6)) {
    FaultEvent loss;
    loss.kind = FaultKind::kLossBurst;
    loss.at = fault_time(rng, horizon);
    loss.rate = 0.05 + rng.uniform() * 0.20;
    loss.duration = util::msec(rng.range(5, 25));
    s.events.push_back(std::move(loss));
  }
  return s;
}

/// A partition cuts the cluster early, heals, and a span migration starts
/// right behind the heal — the freeze/drain/activate markers order through
/// whatever retransmission and view-repair backlog the heal left behind.
/// With the heal dropped (shrinking), the migration starts *during* the
/// partition and must safely stall rather than hand off.
Schedule migration_during_partition_heal(uint64_t seed, int nodes,
                                         Nanos horizon) {
  Rng rng(seed);
  Schedule s{"migration_during_partition_heal", {}};
  FaultEvent cut;
  cut.kind = FaultKind::kPartition;
  cut.at = rng.range(horizon / 10, horizon * 3 / 10);
  cut.group = random_group(rng, nodes);
  FaultEvent heal;
  heal.kind = FaultKind::kHeal;
  heal.at = std::min<Nanos>(cut.at + util::msec(rng.range(20, 50)), horizon);
  FaultEvent move;
  move.kind = FaultKind::kMigrate;
  move.at = std::min<Nanos>(heal.at + util::msec(rng.range(5, 15)), horizon);
  move.count = 3;  // mode: move fraction
  move.node = static_cast<int>(rng.below(4));
  move.peer = move.node + 1 + static_cast<int>(rng.below(3));
  move.rate = 0.25 + rng.uniform() * 0.35;
  s.events.push_back(std::move(cut));
  s.events.push_back(std::move(heal));
  s.events.push_back(std::move(move));
  return s;
}

/// Zipf-skewed keys concentrate traffic on one hot ring; mid-run a
/// rebalance migrates a slice of the hottest ring's span to the
/// least-loaded ring while the skewed load keeps hammering the moving keys.
Schedule hot_shard_zipf_rebalance(uint64_t seed, int nodes, Nanos horizon) {
  (void)nodes;
  Rng rng(seed);
  Schedule s{"hot_shard_zipf_rebalance", {}};
  const int rounds = static_cast<int>(rng.range(1, 2));
  for (int i = 0; i < rounds; ++i) {
    FaultEvent rb;
    rb.kind = FaultKind::kMigrate;
    rb.at = fault_time(rng, horizon);
    rb.count = 4;  // mode: rebalance hottest -> least-loaded
    rb.rate = 0.30 + rng.uniform() * 0.40;
    s.events.push_back(std::move(rb));
  }
  return s;
}

}  // namespace

simnet::Topology campaign_wan_topology(int nodes) {
  const int dcs = std::min(3, std::max(1, nodes - 1));
  return simnet::make_wan_topology(nodes, dcs, util::msec(3),
                                   /*wan_bps=*/1e9, /*full_mesh=*/true,
                                   /*rack_size=*/2);
}

const char* fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLossBurst:
      return "loss_burst";
    case FaultKind::kTokenDrop:
      return "token_drop";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
    case FaultKind::kLatencyShift:
      return "latency_shift";
    case FaultKind::kOverload:
      return "overload";
    case FaultKind::kCpuMultiplier:
      return "cpu_multiplier";
    case FaultKind::kLinkLoss:
      return "link_loss";
    case FaultKind::kLinkDown:
      return "link_down";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kRackPower:
      return "rack_power";
    case FaultKind::kRackRestore:
      return "rack_restore";
    case FaultKind::kSwitchBrownout:
      return "switch_brownout";
    case FaultKind::kWanDown:
      return "wan_down";
    case FaultKind::kPowerLossAll:
      return "power_loss_all";
    case FaultKind::kPowerRestoreAll:
      return "power_restore_all";
    case FaultKind::kDiskDesync:
      return "disk_desync";
    case FaultKind::kDiskBitRot:
      return "disk_bitrot";
    case FaultKind::kDiskFull:
      return "disk_full";
    case FaultKind::kDiskStall:
      return "disk_stall";
    case FaultKind::kRingOffline:
      return "ring_offline";
    case FaultKind::kMigrate:
      return "migrate";
  }
  return "?";
}

namespace {
const char* migrate_mode_name(uint32_t mode) {
  switch (mode) {
    case 1:
      return "add_ring";
    case 2:
      return "remove_ring";
    case 3:
      return "move_fraction";
    case 4:
      return "rebalance";
    default:
      return "?";
  }
}
}  // namespace

std::string describe(const FaultEvent& event) {
  std::ostringstream os;
  os << "t=" << util::to_msec(event.at) << "ms " << fault_name(event.kind);
  switch (event.kind) {
    case FaultKind::kLossBurst:
      os << " rate=" << event.rate << " for " << util::to_msec(event.duration)
         << "ms";
      break;
    case FaultKind::kTokenDrop:
      os << " count=" << event.count;
      break;
    case FaultKind::kPartition: {
      os << " group={";
      for (size_t i = 0; i < event.group.size(); ++i) {
        if (i) os << ",";
        os << event.group[i];
      }
      os << "}";
      break;
    }
    case FaultKind::kHeal:
      break;
    case FaultKind::kCrash:
    case FaultKind::kRestart:
      os << " node=" << event.node;
      break;
    case FaultKind::kLatencyShift:
      os << " extra=" << util::to_msec(event.extra_latency) << "ms for "
         << util::to_msec(event.duration) << "ms";
      break;
    case FaultKind::kOverload:
      os << " node=" << event.node << " count=" << event.count;
      break;
    case FaultKind::kCpuMultiplier:
      os << " node=" << event.node << " x" << event.rate;
      break;
    case FaultKind::kLinkLoss:
      os << " " << event.peer << "->" << event.node << " rate=" << event.rate;
      break;
    case FaultKind::kLinkDown:
      os << " " << event.peer << "->" << event.node << " for "
         << util::to_msec(event.duration) << "ms";
      break;
    case FaultKind::kReorder:
      os << " rate=" << event.rate << " jitter="
         << util::to_usec(event.extra_latency) << "us for "
         << util::to_msec(event.duration) << "ms";
      break;
    case FaultKind::kDuplicate:
      os << " rate=" << event.rate << " for "
         << util::to_msec(event.duration) << "ms";
      break;
    case FaultKind::kRackPower:
    case FaultKind::kRackRestore: {
      os << " hosts={";
      for (size_t i = 0; i < event.group.size(); ++i) {
        if (i) os << ",";
        os << event.group[i];
      }
      os << "}";
      break;
    }
    case FaultKind::kSwitchBrownout:
      os << " dc=" << event.node << " rate=" << event.rate << " extra="
         << util::to_msec(event.extra_latency) << "ms for "
         << util::to_msec(event.duration) << "ms";
      break;
    case FaultKind::kWanDown:
      os << " dc" << event.node << "<->dc" << event.peer << " for "
         << util::to_msec(event.duration) << "ms";
      break;
    case FaultKind::kPowerLossAll:
    case FaultKind::kPowerRestoreAll:
      break;
    case FaultKind::kDiskDesync:
      os << " node=" << event.node
         << " mode=" << (event.count >= 2 ? "reorder" : "torn");
      break;
    case FaultKind::kDiskBitRot:
      os << " node=" << event.node << " bits=" << event.count;
      break;
    case FaultKind::kDiskFull:
      os << " node=" << event.node << " for "
         << util::to_msec(event.duration) << "ms";
      break;
    case FaultKind::kDiskStall:
      os << " node=" << event.node << " ops=" << event.count;
      break;
    case FaultKind::kRingOffline:
      os << " ring=" << (event.node < 0 ? "last" : std::to_string(event.node));
      break;
    case FaultKind::kMigrate:
      os << " mode=" << migrate_mode_name(event.count);
      if (event.count == 1) {
        os << " ring="
           << (event.peer < 0 ? "last" : std::to_string(event.peer));
      } else if (event.count == 2) {
        os << " ring=" << event.node;
      } else if (event.count == 3) {
        os << " " << event.node << "->" << event.peer
           << " frac=" << event.rate;
      } else if (event.count == 4) {
        os << " frac=" << event.rate;
      }
      break;
  }
  return os.str();
}

std::string describe(const Schedule& schedule) {
  std::ostringstream os;
  os << schedule.scenario << " [";
  for (size_t i = 0; i < schedule.events.size(); ++i) {
    if (i) os << "; ";
    os << describe(schedule.events[i]);
  }
  os << "]";
  return os.str();
}

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"loss_bursts", loss_bursts, true},
      {"token_drops", token_drops, true},
      {"partition", partition, false},
      {"partition_delayed_heal", partition_delayed_heal, false},
      {"crash", crash, true},
      {"crash_restart", crash_restart, false},
      {"mixed", mixed, false},
      // Appended after the original seven so the (seed, scenario index)
      // schedule derivation of the regression corpus stays stable.
      {"latency_shift", latency_shift, true},
      {"overload", overload, false, /*client_level=*/true},
      {"reconnect_storm", reconnect_storm, false, /*client_level=*/true},
      // Gray-failure scenarios (appended, same stability rule as above).
      // Not multiring-safe: a quarantine eviction legitimately changes ring
      // membership, which the merged-prefix oracle must not excuse.
      {"straggler_cpu", straggler_cpu, false},
      {"lossy_nic", lossy_nic, false},
      {"flapping_link", flapping_link, false},
      {"reorder_duplicate", reorder_duplicate, true},
      // KV-service scenarios (appended, same stability rule): the whole KV
      // stack — state transfer, leases, sessions — under its nastiest
      // faults, judged by the KvOracle on top of the protocol oracles.
      {"kv_state_transfer_crash", kv_state_transfer_crash, false,
       /*client_level=*/false, /*kv_level=*/true},
      {"kv_lease_holder_crash", kv_lease_holder_crash, false,
       /*client_level=*/false, /*kv_level=*/true},
      // WAN / correlated-fault scenarios (appended, same stability rule):
      // every one runs on campaign_wan_topology with WAN-scaled timeouts.
      // Loss and latency surges are multiring-safe; rack power (restarts),
      // brownout (legitimate quarantines), and flaps (connectivity loss) are
      // single-ring, and the kv variant drives the full KV stack.
      {"wan_loss_bursts", wan_loss_bursts, true,
       /*client_level=*/false, /*kv_level=*/false, /*wan=*/true},
      {"wan_latency_surge", wan_latency_surge, true,
       /*client_level=*/false, /*kv_level=*/false, /*wan=*/true},
      {"rack_power", rack_power, false,
       /*client_level=*/false, /*kv_level=*/false, /*wan=*/true},
      {"switch_brownout", switch_brownout, false,
       /*client_level=*/false, /*kv_level=*/false, /*wan=*/true},
      {"dc_flap", dc_flap, false,
       /*client_level=*/false, /*kv_level=*/false, /*wan=*/true},
      {"kv_wan_rack_power", kv_wan_rack_power, false,
       /*client_level=*/false, /*kv_level=*/true, /*wan=*/true},
      // Storage-fault scenarios (appended, same stability rule): the full
      // KV stack with per-node durable stores, power cut mid-run, judged by
      // the DurabilityOracle on top of the KV and protocol oracles.
      {"kv_blackout", kv_blackout, false,
       /*client_level=*/false, /*kv_level=*/true, /*wan=*/false,
       /*durable=*/true},
      {"kv_blackout_torn", kv_blackout_torn, false,
       /*client_level=*/false, /*kv_level=*/true, /*wan=*/false,
       /*durable=*/true},
      {"kv_disk_bitrot", kv_disk_bitrot, false,
       /*client_level=*/false, /*kv_level=*/true, /*wan=*/false,
       /*durable=*/true},
      {"kv_disk_stress", kv_disk_stress, false,
       /*client_level=*/false, /*kv_level=*/true, /*wan=*/false,
       /*durable=*/true},
      // Live-migration scenarios (appended, same stability rule): keyed
      // workload through the per-node ShardRouters, totally-ordered
      // freeze/drain/activate handoffs, judged by the MergedOracle's handoff
      // audit. Multi-ring only (the runner skips them at rings == 1);
      // multiring_safe=true so the sweep reaches them, including the
      // partition one — the merged-prefix oracle's content-order fallback
      // plus the per-node handoff replay stay sound across a split.
      {"ring_add_under_load", ring_add_under_load, true,
       /*client_level=*/false, /*kv_level=*/false, /*wan=*/false,
       /*durable=*/false, /*migration=*/true},
      {"ring_remove_under_load", ring_remove_under_load, true,
       /*client_level=*/false, /*kv_level=*/false, /*wan=*/false,
       /*durable=*/false, /*migration=*/true},
      {"migration_during_partition_heal", migration_during_partition_heal,
       true, /*client_level=*/false, /*kv_level=*/false, /*wan=*/false,
       /*durable=*/false, /*migration=*/true},
      {"hot_shard_zipf_rebalance", hot_shard_zipf_rebalance, true,
       /*client_level=*/false, /*kv_level=*/false, /*wan=*/false,
       /*durable=*/false, /*migration=*/true, /*zipf_keys=*/true},
  };
  return kScenarios;
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : scenarios()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

std::vector<Schedule> shrink_candidates(const Schedule& schedule) {
  std::vector<Schedule> out;
  out.reserve(schedule.events.size());
  for (size_t drop = 0; drop < schedule.events.size(); ++drop) {
    Schedule cand;
    cand.scenario = schedule.scenario;
    for (size_t i = 0; i < schedule.events.size(); ++i) {
      if (i != drop) cand.events.push_back(schedule.events[i]);
    }
    out.push_back(std::move(cand));
  }
  return out;
}

}  // namespace accelring::check
