// Fault-injection campaign runner.
//
// run_schedule() drives one seeded simulation — a SimCluster, or a RingSet
// when rings > 1 — under a fault Schedule with the safety oracles attached,
// heals every fault at the horizon, drains, and returns the oracle verdict.
// run_campaign() sweeps every applicable scenario across N seeds, prints
// each failure's seed and schedule (a failure reproduces from those alone),
// and greedily shrinks the failing schedule to a minimal reproducer.
//
// The `inject_merge_bug` option deliberately reorders node 1's merged
// stream (adjacent-pair swap) before it reaches the MergedOracle — a
// mutation used by the tests to prove the oracles catch ordering bugs and
// the shrinker converges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "harness/cluster.hpp"
#include "protocol/types.hpp"
#include "simnet/network.hpp"

namespace accelring::check {

/// Membership timeouts tight enough that view changes complete well inside a
/// few-hundred-millisecond run.
[[nodiscard]] protocol::ProtocolConfig fast_proto_config();

/// fast_proto_config() plus gray-failure detection. The campaign default:
/// every scenario — fault-free and loss-only included — doubles as the
/// detector's zero-false-positive regression via the healthy-member
/// quarantine audit. Kept separate from fast_proto_config() so experiments
/// that borrow the fast timeouts (e.g. the adaptive-timeout A/B) vary one
/// variable at a time and keep seed-identical packet sizes.
[[nodiscard]] protocol::ProtocolConfig campaign_proto_config();

/// campaign_proto_config() rescaled for the multi-datacenter campaign
/// topology: a token rotation crosses several 3 ms WAN links, so the static
/// membership timeouts stretch accordingly and the Jacobson/Karels adaptive
/// estimator is switched on (WAN delay is exactly the condition it exists
/// for). Applied automatically by run_schedule for scenarios with
/// Scenario::wan set, together with a longer drain.
[[nodiscard]] protocol::ProtocolConfig wan_proto_config();

struct RunOptions {
  int nodes = 5;
  int rings = 1;  ///< 1 = single cluster; >1 = RingSet with K rings
  Nanos horizon = util::msec(250);     ///< workload + fault window
  Nanos drain = util::msec(300);       ///< heal-all, then quiesce
  Nanos submit_interval = util::msec(2);  ///< per-node submit cadence
  size_t payload_size = 64;
  simnet::FabricParams fabric = simnet::FabricParams::one_gig();
  harness::ImplProfile profile = harness::ImplProfile::kLibrary;
  protocol::ProtocolConfig proto = campaign_proto_config();
  uint32_t merge_batch = 4;                ///< multi-ring only
  Nanos skip_interval = util::usec(300);   ///< multi-ring only
  bool inject_merge_bug = false;           ///< mutation (multi-ring only)
  /// Mutation (migration scenarios only): node 1 flushes one held moving-key
  /// message to the *source* ring after activation — the classic stale-map
  /// handoff bug. The MergedOracle's handoff audit must catch it.
  bool inject_handoff_bug = false;
  /// When non-empty, a failing run (oracle violation or healthy-member
  /// quarantine) writes a flight-recorder artifact —
  /// `<artifact_dir>/<scenario>_<seed>.json` with the violations, each
  /// node's recent trace events, and a metric snapshot — so a CI failure
  /// ships its own black box. Metrics are enabled for the run iff this is
  /// set (recording is perturbation-free, so the verdict cannot change).
  /// shrink() always runs its candidates with dumping off.
  std::string artifact_dir;
};

struct RunResult {
  bool ok = false;
  std::vector<Violation> violations;
  uint64_t delivered = 0;  ///< deliveries the oracles observed
  /// Distinct regular configurations that excluded a live node, counted only
  /// when the schedule held no partition/crash/restart (then no ejection is
  /// justified). Not a safety violation — EVS permits spurious view changes —
  /// but the liveness regression adaptive timeouts exist to prevent.
  uint64_t false_ejections = 0;
  /// Gray-failure quarantine evictions initiated / probations completed
  /// across all engines. A quarantine of a node no fault degraded is a
  /// Violation ("healthy member quarantined"), not just a counter.
  uint64_t quarantines = 0;
  uint64_t readmits = 0;
  uint64_t client_delivered = 0;  ///< client-level runs: app deliveries
  std::string report;      ///< violations joined, "" when ok
  /// Flight-recorder artifact written for this run ("" when the run passed,
  /// artifact_dir was empty, or the write failed).
  std::string artifact_path;
};

[[nodiscard]] RunResult run_schedule(const RunOptions& opt,
                                     const Schedule& schedule, uint64_t seed);

/// Greedy shrink: repeatedly drop any single event whose removal keeps the
/// run failing, until no event is removable. Deterministic given the seed.
[[nodiscard]] Schedule shrink(const RunOptions& opt, const Schedule& schedule,
                              uint64_t seed);

struct CampaignOptions {
  RunOptions run;
  int seeds_per_scenario = 20;
  uint64_t seed_base = 1;
  bool shrink_failures = true;
  bool verbose = false;  ///< print per-scenario progress to stderr
  /// Restrict to these scenario names (empty = all applicable to run.rings).
  std::vector<std::string> only;
  /// Extra seeds replayed for every scenario (the tests/seeds corpus).
  std::vector<uint64_t> extra_seeds;
};

struct FailureCase {
  std::string scenario;
  uint64_t seed = 0;
  Schedule schedule;
  Schedule shrunk;  ///< == schedule when shrinking is off
  std::string report;
};

struct CampaignResult {
  int runs = 0;
  int failures = 0;
  uint64_t delivered = 0;            ///< across all runs
  uint64_t false_ejections = 0;      ///< across all runs (see RunResult)
  uint64_t quarantines = 0;          ///< across all runs (see RunResult)
  uint64_t readmits = 0;             ///< across all runs (see RunResult)
  std::vector<FailureCase> cases;    ///< detail for the first failures
  [[nodiscard]] bool ok() const { return failures == 0; }
};

[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& opt);

}  // namespace accelring::check
