#include "check/kv_oracle.hpp"

#include <sstream>

#include "util/crc32.hpp"

namespace accelring::check {

namespace {

constexpr size_t kMaxViolations = 100;

uint32_t value_crc(const std::string& s) {
  return util::crc32(std::as_bytes(std::span{s.data(), s.size()}));
}

}  // namespace

void KvOracle::fail(std::string what) {
  if (violations_.size() >= kMaxViolations) {
    ++suppressed_;
    return;
  }
  violations_.push_back({std::move(what)});
}

void KvOracle::bind(kv::KvService& service) {
  service_ = &service;
  shards_ = service.shards();
  const auto n = static_cast<size_t>(service.nodes());
  const auto k = static_cast<size_t>(shards_);
  history_.resize(k);
  by_key_.resize(k);
  grant_ordinal_.resize(k);
  next_ordinal_.assign(k, 0);
  max_served_.assign(k, -1);
  last_version_.assign(n, std::vector<int64_t>(k, -1));
  last_grant_seen_.assign(n, std::vector<int64_t>(k, -1));
  if (service.config().preload_keys != 0) {
    fail("KvOracle requires preload_keys == 0 (preloaded values have no "
         "apply events, so read checks would see holes)");
  }
}

void KvOracle::attach(kv::KvService& service) {
  bind(service);
  service.set_on_applied(
      [this](int node, int shard, const kv::AppliedOp& applied, Nanos at) {
        on_applied(node, shard, applied, at);
      });
  service.set_on_lease_grant(
      [this](int node, int shard, const kv::LeaseId& id, Nanos at) {
        on_lease_grant(node, shard, id, at);
      });
  service.set_on_outcome(
      [this](int node, const kv::Frontend::Outcome& outcome) {
        on_outcome(node, outcome);
      });
}

void KvOracle::on_applied(int node, int shard, const kv::AppliedOp& applied,
                          Nanos at) {
  (void)at;
  ++observed_;
  const auto n = static_cast<size_t>(node);
  const auto s = static_cast<size_t>(shard);
  int64_t& last = last_version_[n][s];
  const auto version = static_cast<int64_t>(applied.version);
  if (version < last) {
    std::ostringstream os;
    os << "node " << node << " shard " << shard
       << ": applied version went backwards (" << version << " after "
       << last << ")";
    fail(os.str());
  }
  // A node adopting a state transfer restores a checkpoint whose interior
  // mutations are never applied individually: its first post-restore applies
  // (suffix + buffered replay) legitimately jump past them. Agreement and
  // monotonicity still hold; only the +1 continuity check is waived there.
  const bool catch_up =
      service_ != nullptr &&
      service_->replica(node, shard).in_catchup_replay();
  if (applied.mutated && !catch_up && last >= 0 && version != last + 1) {
    std::ostringstream os;
    os << "node " << node << " shard " << shard
       << ": effective mutation jumped version " << last << " -> " << version;
    fail(os.str());
  }
  last = version;

  if (!applied.mutated) return;
  const bool present = applied.type != kv::OpType::kDel;
  MutRec rec;
  rec.key = *applied.key;
  rec.present = present;
  rec.value_crc = applied.value_crc;
  const auto [it, inserted] =
      history_[s].emplace(applied.version, std::move(rec));
  if (inserted) {
    by_key_[s][it->second.key][applied.version] =
        KeyState{it->second.value_crc, it->second.present};
    return;
  }
  const MutRec& agreed = it->second;
  if (agreed.key != *applied.key || agreed.present != present ||
      agreed.value_crc != applied.value_crc) {
    std::ostringstream os;
    os << "node " << node << " shard " << shard << " version "
       << applied.version << ": replica divergence — applied key '"
       << *applied.key << "' crc " << applied.value_crc << ", agreed key '"
       << agreed.key << "' crc " << agreed.value_crc;
    fail(os.str());
  }
}

void KvOracle::on_lease_grant(int node, int shard, const kv::LeaseId& id,
                              Nanos at) {
  (void)at;
  ++observed_;
  const auto n = static_cast<size_t>(node);
  const auto s = static_cast<size_t>(shard);
  auto [it, inserted] = grant_ordinal_[s].emplace(id, next_ordinal_[s]);
  if (inserted) ++next_ordinal_[s];
  const auto ordinal = static_cast<int64_t>(it->second);
  if (ordinal < last_grant_seen_[n][s]) {
    // First-observation order disagreed with this node's observation order;
    // grants ride the ordered stream, so this should be impossible.
    std::ostringstream os;
    os << "node " << node << " shard " << shard
       << ": grant order anomaly (ordinal " << ordinal << " after "
       << last_grant_seen_[n][s] << ")";
    fail(os.str());
  }
  last_grant_seen_[n][s] = ordinal;
}

void KvOracle::note_map_change(uint64_t to_version) {
  ++map_epoch_;
  map_version_ = to_version;
}

void KvOracle::on_outcome(int node, const kv::Frontend::Outcome& outcome) {
  ++observed_;
  const auto s = static_cast<size_t>(outcome.shard);

  // Routing continuity: a key may change serving shard only across a map
  // change (Frontend::apply_map). Two outcomes for one key on different
  // shards inside one routing epoch mean some node routed with a stale map.
  const auto route = std::make_pair(outcome.shard, map_epoch_);
  const auto [rit, fresh] = key_route_.try_emplace(outcome.key, route);
  if (!fresh) {
    if (rit->second.first != outcome.shard && rit->second.second == map_epoch_) {
      std::ostringstream os;
      os << "node " << node << " key '" << outcome.key
         << "': rerouted shard " << rit->second.first << " -> "
         << outcome.shard << " with no shard-map change (routing epoch "
         << map_epoch_ << ", map version " << map_version_ << ")";
      fail(os.str());
    }
    rit->second = route;
  }

  if (outcome.lease_served) {
    ++lease_serves_;
    const auto it = grant_ordinal_[s].find(outcome.lease);
    if (it == grant_ordinal_[s].end()) {
      std::ostringstream os;
      os << "node " << node << " shard " << outcome.shard
         << ": read served under unknown lease (holder "
         << outcome.lease.holder << ", granted_at "
         << outcome.lease.granted_at << ")";
      fail(os.str());
    } else {
      const auto ordinal = static_cast<int64_t>(it->second);
      // Outcomes arrive in simulated-time order, so a serve under an older
      // grant after any serve under a newer one is a stale lease read.
      if (ordinal < max_served_[s]) {
        std::ostringstream os;
        os << "node " << node << " shard " << outcome.shard
           << ": STALE LEASE READ — served under grant ordinal " << ordinal
           << " (holder " << outcome.lease.holder << ", granted_at "
           << outcome.lease.granted_at << ") at " << outcome.done_at
           << " after ordinal " << max_served_[s] << " already served";
        fail(os.str());
      }
      if (ordinal > max_served_[s]) max_served_[s] = ordinal;
    }
  }

  if (kv::is_mutation(outcome.type)) {
    uint64_t& floor = write_floor_[outcome.uuid][outcome.shard];
    floor = std::max(floor, outcome.version);
    return;
  }

  // Session guarantees for reads.
  auto& wf = write_floor_[outcome.uuid];
  if (const auto it = wf.find(outcome.shard);
      it != wf.end() && outcome.version < it->second) {
    std::ostringstream os;
    os << "session " << outcome.uuid << " shard " << outcome.shard
       << ": read-your-writes violated (read at version " << outcome.version
       << ", last write acked at " << it->second << ")";
    fail(os.str());
  }
  uint64_t& rf = read_floor_[outcome.uuid][outcome.shard];
  if (outcome.version < rf) {
    std::ostringstream os;
    os << "session " << outcome.uuid << " shard " << outcome.shard
       << ": monotonic reads violated (" << outcome.version << " after "
       << rf << ")";
    fail(os.str());
  }
  rf = std::max(rf, outcome.version);

  if (outcome.type != kv::OpType::kGet) return;  // scans: not content-checked

  // Value correctness at the read's version.
  const auto& versions = by_key_[s];
  const auto key_it = versions.find(outcome.key);
  const KeyState* state = nullptr;
  if (key_it != versions.end()) {
    // Last mutation of this key at or below the read's version.
    const auto& hist = key_it->second;
    auto it = hist.upper_bound(outcome.version);
    if (it != hist.begin()) state = &std::prev(it)->second;
  }
  const bool expect_present = state != nullptr && state->present;
  const bool got_present = outcome.result.status == kv::Status::kOk;
  if (expect_present != got_present) {
    std::ostringstream os;
    os << "node " << node << " shard " << outcome.shard << " key '"
       << outcome.key << "': GET at version " << outcome.version
       << " returned " << (got_present ? "a value" : "not-found")
       << ", history says " << (expect_present ? "present" : "absent");
    fail(os.str());
    return;
  }
  if (got_present && value_crc(outcome.result.value) != state->value_crc) {
    std::ostringstream os;
    os << "node " << node << " shard " << outcome.shard << " key '"
       << outcome.key << "': GET at version " << outcome.version
       << " returned wrong value (crc " << value_crc(outcome.result.value)
       << ", history " << state->value_crc << ")";
    fail(os.str());
  }
}

void KvOracle::note_lineage_rollback(int shard, uint64_t version) {
  const auto s = static_cast<size_t>(shard);
  if (s >= history_.size()) return;
  auto& hist = history_[s];
  hist.erase(hist.upper_bound(version), hist.end());
  auto& keys = by_key_[s];
  for (auto it = keys.begin(); it != keys.end();) {
    auto& per_key = it->second;
    per_key.erase(per_key.upper_bound(version), per_key.end());
    it = per_key.empty() ? keys.erase(it) : std::next(it);
  }
  for (auto& entry : write_floor_) {
    if (auto it = entry.second.find(shard);
        it != entry.second.end() && it->second > version) {
      it->second = version;
    }
  }
  for (auto& entry : read_floor_) {
    if (auto it = entry.second.find(shard);
        it != entry.second.end() && it->second > version) {
      it->second = version;
    }
  }
}

void KvOracle::note_restart(int node) {
  const auto n = static_cast<size_t>(node);
  if (n >= last_version_.size()) return;
  for (auto& v : last_version_[n]) v = -1;
}

std::string KvOracle::report() const {
  std::string out;
  for (const auto& v : violations_) {
    out += "kv: " + v.what + "\n";
  }
  if (suppressed_ > 0) {
    std::ostringstream os;
    os << "kv: ... " << suppressed_ << " further violations suppressed\n";
    out += os.str();
  }
  return out;
}

}  // namespace accelring::check
