// Client fleet for client-level fault campaigns.
//
// Builds the full deployment stack on top of a SimCluster: one Daemon per
// node (bounded ingress queues, SLOWDOWN/RESUME), and N FailoverClients per
// node driving the workload through group "load". Crashing a node destroys
// its daemon; restarting builds a fresh one over the replacement engine, and
// the clients find it again through their jittered-backoff reconnect loop.
//
// Every client send is stamped with the client's session uuid and its
// accepted-send index (which, because FailoverClient numbers accepted sends
// 1,2,3..., equals the session-frame seq). finalize() then checks the
// end-to-end failover contract at the *application* callback, after the
// client library's duplicate filter has done its work:
//
//  * zero duplicates: no client observes the same (uuid, seq) twice,
//  * zero loss: every send accepted by a client whose daemon is alive at
//    the end was delivered to every client on a node that stayed in the
//    ring, exactly once,
//  * drained: those same clients end reconnected with an empty outbox.
//
// The completeness obligation is scoped the way EVS scopes it: a node that
// crashed, or that was excluded from any regular configuration installed
// during the run (a reformation transient), may legitimately have missed
// messages ordered while it was outside the view — and its own acked sends
// may have been ordered in a minority view. Such nodes' clients are exempt
// from the zero-loss check on both sides but still participate in the
// duplicate check, which holds unconditionally.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "check/oracle.hpp"
#include "daemon/daemon.hpp"
#include "daemon/failover_client.hpp"
#include "harness/cluster.hpp"

namespace accelring::check {

struct FleetOptions {
  int clients_per_node = 2;
  daemon::DaemonConfig daemon;
  Nanos backoff_base = util::msec(2);   ///< reconnect backoff floor
  Nanos backoff_cap = util::msec(40);   ///< reconnect backoff ceiling
  uint64_t seed = 1;                    ///< jitter seeds (per client)
  Nanos workload_start = util::msec(20);  ///< lets the joins order first
  Nanos send_interval = util::msec(2);    ///< per-client send cadence
  size_t payload_size = 48;
};

struct FleetReport {
  bool ok = true;
  std::vector<Violation> violations;
  uint64_t sent = 0;        ///< sends accepted into client outboxes
  uint64_t dropped = 0;     ///< sends shed by a full outbox
  uint64_t delivered = 0;   ///< application-level deliveries, all clients
  uint64_t reconnects = 0;  ///< successful client (re)connections
  uint64_t slowdowns = 0;   ///< SLOWDOWN notifications daemons issued
  uint64_t duplicates_suppressed = 0;  ///< caught by the client-side filter
};

class ClientFleet {
 public:
  /// Wires delivery/configuration observers into `cluster`; construct before
  /// start_static() so the initial configuration reaches the daemons too.
  ClientFleet(harness::SimCluster& cluster, FleetOptions opt);

  /// Connect and join every client now, then arm the per-client send chains
  /// over [workload_start, horizon]. Call once, before the run.
  void start(Nanos horizon);

  /// `node` was crashed: tear down its daemon, tell its clients.
  void on_crash(int node);
  /// `node` was cold-restarted: build a daemon over the fresh engine (the
  /// clients' reconnect loop finds it on its next attempt).
  void on_restart(int node);
  /// Overload injection: `count` extra sends from `node`'s clients at once.
  void burst(int node, uint32_t count);

  /// End-of-run verdict; call after the drain.
  [[nodiscard]] FleetReport finalize();

  [[nodiscard]] daemon::Daemon* daemon_at(int node) {
    return daemons_[static_cast<size_t>(node)].get();
  }
  [[nodiscard]] const daemon::FailoverClient& client(int node, int k) const {
    return *clients_[static_cast<size_t>(node * opt_.clients_per_node + k)]
                ->client;
  }

 private:
  struct ClientRec {
    int node = -1;
    uint64_t uuid = 0;
    uint64_t next_index = 1;  ///< == the FailoverClient's next frame seq
    std::unique_ptr<daemon::FailoverClient> client;
    /// (uuid, seq) -> copies observed at this client's application callback.
    std::map<std::pair<uint64_t, uint64_t>, int> seen;
  };

  void send_one(ClientRec& rec);

  harness::SimCluster& cluster_;
  FleetOptions opt_;
  std::vector<std::unique_ptr<daemon::Daemon>> daemons_;
  std::vector<std::unique_ptr<ClientRec>> clients_;
  std::vector<bool> node_crashed_;   ///< ever crashed during the run
  /// Ever missing from a regular configuration anyone installed (EVS: such a
  /// node may have missed deliveries, and its sends may have been ordered in
  /// a minority view).
  std::vector<bool> node_excluded_;
  /// uuid -> accepted send seqs (what "zero loss" is checked against).
  std::map<uint64_t, std::set<uint64_t>> accepted_;
  uint64_t dropped_ = 0;
  uint64_t daemon_slowdowns_ = 0;  ///< carried over from destroyed daemons
};

}  // namespace accelring::check
