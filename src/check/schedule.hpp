// Fault-schedule DSL for the campaign runner.
//
// A Schedule is a short list of timed fault events against a running
// cluster: loss bursts, token drops, partitions (with immediate or delayed
// heal), and node crash/restart. Schedules are generated deterministically
// from a seed by small scenario generators, so a failure reproduces from
// (scenario, seed) alone; the campaign runner (campaign.hpp) also shrinks a
// failing schedule to a minimal reproducer by greedy event removal, which
// works because every event is independently droppable (a heal without a
// partition, or a restart without a crash, degrades to a no-op).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/topology.hpp"
#include "util/time.hpp"

namespace accelring::check {

using util::Nanos;

enum class FaultKind : uint8_t {
  kLossBurst,     ///< random loss at `rate` for `duration`
  kTokenDrop,     ///< absorb the next `count` token-socket datagrams
  kPartition,     ///< move `group` into their own partition
  kHeal,          ///< put every host back into one partition
  kCrash,         ///< take `node` down
  kRestart,       ///< cold-restart `node` (no-op unless it is down)
  kLatencyShift,  ///< add `extra_latency` to every delivery for `duration`
  kOverload,      ///< client fleet: `count` extra sends burst from `node`
  kCpuMultiplier, ///< scale `node`'s simulated CPU costs by `rate` (1 = heal)
  kLinkLoss,      ///< drop `rate` of frames on the `peer`->`node` link
  kLinkDown,      ///< black-hole the `peer`->`node` link for `duration`
  kReorder,       ///< reorder `rate` of deliveries (up to `extra_latency` late)
  kDuplicate,     ///< duplicate `rate` of deliveries
  // Correlated faults (WAN scenarios; see docs/TOPOLOGIES.md).
  kRackPower,     ///< crash every host in `group` at once (rack power loss)
  kRackRestore,   ///< cold-restart every downed host in `group`
  kSwitchBrownout, ///< dc `node`: loss `rate` + `extra_latency` on every port
                   ///< for `duration`
  kWanDown,       ///< WAN link `node`<->`peer` (dc ids) down for `duration`
  // Storage faults (durable KV scenarios; see docs/ROBUSTNESS.md).
  kPowerLossAll,    ///< whole-cluster power loss: every up node crashes at once
  kPowerRestoreAll, ///< restart every downed node; recovery comes from disk
  kDiskDesync,      ///< `node`'s write cache starts lying (`count` picks the
                    ///< crash mode: 1 = torn, 2 = reorder); cleared by the
                    ///< next power loss
  kDiskBitRot,      ///< flip `count` durable bits in `node`'s shard files
  kDiskFull,        ///< `node`'s disk reports ENOSPC for `duration`
  kDiskStall,       ///< `node`'s next `count` disk ops fail with IO errors
  // Elastic-multiring faults (migration scenarios; see docs/MULTIRING.md).
  // Ring indices are resolved against the run's ring count K at execution
  // time (-1 = the last ring, other values taken modulo K), so one schedule
  // replays at any K.
  kRingOffline,     ///< at t=0: ring `node` starts owning no hash space
  kMigrate,         ///< start a live migration; `count` picks the mode:
                    ///< 1 = add ring `peer`, 2 = remove ring `node`,
                    ///< 3 = move `rate` of ring `node`'s span to `peer`,
                    ///< 4 = rebalance `rate` of the hottest ring's span to
                    ///<     the least-loaded ring
};

[[nodiscard]] const char* fault_name(FaultKind kind);

struct FaultEvent {
  Nanos at = 0;
  FaultKind kind = FaultKind::kLossBurst;
  int node = -1;           ///< crash / restart victim
  double rate = 0;         ///< loss probability during a burst
  Nanos duration = 0;      ///< loss-burst length
  uint32_t count = 0;      ///< token datagrams to absorb / burst sends
  Nanos extra_latency = 0; ///< added delivery latency during a shift
  int peer = -1;           ///< link-fault source host (-1 = any sender)
  std::vector<int> group;  ///< partition members split off
};

struct Schedule {
  std::string scenario;
  std::vector<FaultEvent> events;
};

[[nodiscard]] std::string describe(const FaultEvent& event);
[[nodiscard]] std::string describe(const Schedule& schedule);

/// Scenario generator: deterministic schedule from (seed, cluster size,
/// fault horizon). All generated events land inside [horizon/10, horizon].
using ScenarioFn = Schedule (*)(uint64_t seed, int nodes, Nanos horizon);

struct Scenario {
  const char* name;
  ScenarioFn make;
  /// Safe to run against a multi-ring set: faults that may legitimately
  /// split the merged total order (partitions) are excluded there.
  bool multiring_safe;
  /// Runs with a ClientFleet (daemons + failover clients driving the
  /// workload) instead of direct engine submits. Single-ring only.
  bool client_level = false;
  /// Runs a full KV service (KvService + SessionWorkload + KvOracle) on the
  /// cluster instead of raw submits, checking state-machine agreement, read
  /// correctness, session guarantees, and lease exclusivity under the
  /// schedule's faults. Single-ring only.
  bool kv_level = false;
  /// Runs on the campaign's multi-datacenter topology
  /// (campaign_wan_topology) with WAN-scaled protocol timeouts and a longer
  /// drain, instead of the single-switch LAN fabric.
  bool wan = false;
  /// KV-level run with per-node durability: every replica persists through
  /// a ReplicaStore over the node's SimDisk, and the DurabilityOracle
  /// judges every recovery against the committed history. Implies kv_level
  /// semantics; single-ring only.
  bool durable = false;
  /// Live-migration scenario: the workload submits through the per-node
  /// ShardRouters (keyed), the schedule carries kMigrate/kRingOffline
  /// events, and the MergedOracle runs its handoff audit. Multi-ring only —
  /// skipped when the campaign sweeps rings == 1.
  bool migration = false;
  /// Keyed workload draws zipf-skewed keys (hot-shard scenarios) instead of
  /// uniform per-(node, index) keys.
  bool zipf_keys = false;
};

/// The 3-datacenter topology every WAN campaign scenario runs on: `nodes`
/// hosts split contiguously over 3 metro-distance DCs (3 ms WAN propagation
/// — far above the LAN's 300 ns, small enough that token rotation stays well
/// inside the WAN campaign timeouts), racks of 2, full WAN mesh.
/// Deterministic: correlated-fault group selection draws against this.
[[nodiscard]] simnet::Topology campaign_wan_topology(int nodes);

/// The scenario catalogue, in campaign order.
[[nodiscard]] const std::vector<Scenario>& scenarios();
/// Lookup by name; nullptr when unknown.
[[nodiscard]] const Scenario* find_scenario(const std::string& name);

/// All one-event-removed variants, in order (for greedy shrinking).
[[nodiscard]] std::vector<Schedule> shrink_candidates(
    const Schedule& schedule);

}  // namespace accelring::check
