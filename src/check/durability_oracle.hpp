// Durability oracle: proves that what a cluster recovers from disk is a
// committed prefix of what it acknowledged before the power went out.
//
// The contract it checks, per shard:
//
//  * Prefix, not invention — every node's recovered version is at or below
//    the version it had applied when it crashed (recovery never resurrects
//    state the lineage did not produce), and the cluster-wide recovery
//    basis B (the highest recovered version across up nodes) never exceeds
//    the highest version any node had applied.
//  * Safe-node equality — a node whose disk was honest (no lying write
//    cache, no injected IO faults, no bit rot) recovers *exactly* the
//    version it had applied: the WAL is fsynced before every apply, so an
//    honest disk loses nothing.
//  * Acked-write durability — any version that was applied by at least one
//    safe-disk node must be covered by B after a whole-cluster power loss.
//    Versions acked only through unsafe-disk nodes may legitimately be
//    lost; the oracle counts those as *excused* rather than failing
//    (that is precisely the torn-write / lying-cache failure mode the
//    campaign injects on a minority).
//  * Lineage integrity — across all replica incarnations of a durable run
//    the boundary-CRC divergence audit must stay zero: recovering from
//    disk must never revive a diverged lineage (finalize()).
//
// The oracle is fed the same applied/outcome streams as the KvOracle (the
// campaign fans one set of service observers out to both), plus explicit
// notes from the fault injector: which disks were made unsafe, when nodes
// crashed/restarted, and when a whole-cluster recovery completed. After a
// cluster recovery it tells the KvOracle where the surviving history ends
// via note_lineage_rollback().
//
// Like every oracle here it never throws; violations accumulate and the
// campaign attaches seed + schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/kv_oracle.hpp"
#include "check/oracle.hpp"
#include "kv/service.hpp"

namespace accelring::check {

class DurabilityOracle {
 public:
  DurabilityOracle() = default;

  /// Size the oracle for `service` and remember it (machine versions are
  /// read from it at crash/restart/recovery time). Does not claim any
  /// observer slot — feed on_applied/on_outcome directly.
  void bind(kv::KvService& service);

  // Event feeds (same streams the KvOracle sees).
  void on_applied(int node, int shard, const kv::AppliedOp& applied,
                  Nanos at);
  void on_outcome(int node, const kv::Frontend::Outcome& outcome);

  /// `node`'s disk is no longer trusted (lying write cache, injected IO
  /// errors, bit rot): its applies stop raising the safe-acked floor and
  /// its recovery is only checked for the prefix property, not equality.
  /// Sticky until the node's next note_restart (a fresh incarnation
  /// recovered whatever was durable; the fault window is over).
  void note_disk_unsafe(int node, const std::string& why);

  /// `node` just crashed (call after the service's on_crash): captures the
  /// per-shard applied versions the recovery will be judged against.
  void note_crash(int node);

  /// `node` just came back (call after the service's on_restart, before the
  /// simulation resumes): checks its disk-recovered versions against the
  /// crash snapshot, then clears the node's unsafe mark.
  void note_restart(int node);

  /// A whole-cluster power loss has been fully restored (every node
  /// restarted): computes the recovery basis B per shard, checks
  /// acked-write durability, counts excused losses, and rolls the KvOracle
  /// (when given) back to the surviving history.
  void note_cluster_recovery(KvOracle* kv);

  /// End of run: lineage-integrity check (total divergence must be zero).
  void finalize();

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::string report() const;
  /// Recovery checks performed (restarts + cluster recoveries), for test
  /// sanity: a durable scenario that never exercised recovery proves
  /// nothing.
  [[nodiscard]] uint64_t checks() const { return checks_; }
  /// Acked versions that were lost but excused (acked only via unsafe
  /// disks).
  [[nodiscard]] uint64_t excused_losses() const { return excused_; }

 private:
  void fail(std::string what);

  kv::KvService* service_ = nullptr;
  int nodes_ = 0;
  int shards_ = 0;
  /// Per shard: highest version applied at any node whose disk was safe at
  /// the time — the floor a cluster-wide recovery must reach.
  std::vector<uint64_t> safe_floor_;
  /// Per shard: highest version any node applied — the ceiling no recovery
  /// may exceed.
  std::vector<uint64_t> max_applied_;
  /// Per shard: highest successfully acked mutation version (for the
  /// excused-loss count).
  std::vector<uint64_t> acked_floor_;
  /// Per node: disk currently unsafe (see note_disk_unsafe).
  std::vector<bool> unsafe_;
  /// Per (node, shard): applied version at the node's last crash
  /// (-1 = node not currently crashed).
  std::vector<std::vector<int64_t>> at_crash_;
  /// Whether the node was unsafe when it crashed (the flag that matters for
  /// the equality check at restart).
  std::vector<bool> unsafe_at_crash_;

  std::vector<Violation> violations_;
  uint64_t suppressed_ = 0;
  uint64_t checks_ = 0;
  uint64_t excused_ = 0;
};

}  // namespace accelring::check
