#include "check/durability_oracle.hpp"

#include <algorithm>
#include <sstream>

namespace accelring::check {

namespace {

constexpr size_t kMaxViolations = 100;

}  // namespace

void DurabilityOracle::fail(std::string what) {
  if (violations_.size() >= kMaxViolations) {
    ++suppressed_;
    return;
  }
  violations_.push_back({std::move(what)});
}

void DurabilityOracle::bind(kv::KvService& service) {
  service_ = &service;
  nodes_ = service.nodes();
  shards_ = service.shards();
  const auto n = static_cast<size_t>(nodes_);
  const auto k = static_cast<size_t>(shards_);
  safe_floor_.assign(k, 0);
  max_applied_.assign(k, 0);
  acked_floor_.assign(k, 0);
  unsafe_.assign(n, false);
  unsafe_at_crash_.assign(n, false);
  at_crash_.assign(n, std::vector<int64_t>(k, -1));
  if (!service.config().store_factory) {
    fail("DurabilityOracle attached to a service with no store_factory — "
         "nothing is durable, every recovery check would be vacuous");
  }
}

void DurabilityOracle::on_applied(int node, int shard,
                                  const kv::AppliedOp& applied, Nanos at) {
  (void)at;
  if (!applied.mutated) return;
  const auto n = static_cast<size_t>(node);
  const auto s = static_cast<size_t>(shard);
  max_applied_[s] = std::max(max_applied_[s], applied.version);
  // The WAL append (and its fsync) happens before the apply, so an apply at
  // an honest-disk node means the version is durable there right now.
  if (n < unsafe_.size() && !unsafe_[n]) {
    safe_floor_[s] = std::max(safe_floor_[s], applied.version);
  }
}

void DurabilityOracle::on_outcome(int node, const kv::Frontend::Outcome& o) {
  (void)node;
  if (!kv::is_mutation(o.type)) return;
  if (o.result.status != kv::Status::kOk) return;
  const auto s = static_cast<size_t>(o.shard);
  if (s < acked_floor_.size()) {
    acked_floor_[s] = std::max(acked_floor_[s], o.version);
  }
}

void DurabilityOracle::note_disk_unsafe(int node, const std::string& why) {
  (void)why;
  const auto n = static_cast<size_t>(node);
  if (n < unsafe_.size()) unsafe_[n] = true;
}

void DurabilityOracle::note_crash(int node) {
  if (service_ == nullptr) return;
  const auto n = static_cast<size_t>(node);
  for (int s = 0; s < shards_; ++s) {
    at_crash_[n][static_cast<size_t>(s)] =
        static_cast<int64_t>(service_->machine(node, s).version());
  }
  unsafe_at_crash_[n] = unsafe_[n];
}

void DurabilityOracle::note_restart(int node) {
  if (service_ == nullptr) return;
  const auto n = static_cast<size_t>(node);
  ++checks_;
  for (int s = 0; s < shards_; ++s) {
    const int64_t before = at_crash_[n][static_cast<size_t>(s)];
    if (before < 0) continue;  // crash snapshot missing: nothing to judge
    const auto recovered =
        static_cast<int64_t>(service_->machine(node, s).version());
    if (recovered > before) {
      std::ostringstream os;
      os << "node " << node << " shard " << s
         << ": recovery RESURRECTED state — recovered version " << recovered
         << " above the " << before << " applied at crash";
      fail(os.str());
    }
    if (!unsafe_at_crash_[n] && recovered != before) {
      std::ostringstream os;
      os << "node " << node << " shard " << s
         << ": honest disk lost state — recovered version " << recovered
         << ", had applied " << before
         << " (WAL is fsynced before apply, nothing may be lost)";
      fail(os.str());
    }
    at_crash_[n][static_cast<size_t>(s)] = -1;
  }
  // Fresh incarnation over whatever was durable: the fault window is over.
  unsafe_[n] = false;
  unsafe_at_crash_[n] = false;
}

void DurabilityOracle::note_cluster_recovery(KvOracle* kv) {
  if (service_ == nullptr) return;
  ++checks_;
  for (int s = 0; s < shards_; ++s) {
    const auto si = static_cast<size_t>(s);
    uint64_t basis = 0;
    for (int node = 0; node < nodes_; ++node) {
      if (!service_->node_up(node)) continue;
      basis = std::max(basis, service_->machine(node, s).version());
    }
    if (basis > max_applied_[si]) {
      std::ostringstream os;
      os << "shard " << s << ": recovery basis " << basis
         << " exceeds the highest version ever applied (" << max_applied_[si]
         << ") — recovered state is not a prefix of the pre-crash history";
      fail(os.str());
    }
    if (basis < safe_floor_[si]) {
      std::ostringstream os;
      os << "shard " << s << ": DURABILITY VIOLATION — version "
         << safe_floor_[si]
         << " was applied (WAL-fsynced) at an honest-disk node but the "
            "cluster recovered only to "
         << basis;
      fail(os.str());
    }
    if (acked_floor_[si] > basis) {
      // Acked versions above the basis were durable nowhere safe; that is
      // the injected lying-cache / torn-write failure doing exactly what it
      // says. Count, do not fail.
      excused_ += acked_floor_[si] - basis;
    }
    // History restarts from the basis: future floors are measured against
    // the revived lineage.
    safe_floor_[si] = std::min(safe_floor_[si], basis);
    acked_floor_[si] = std::min(acked_floor_[si], basis);
    max_applied_[si] = std::max(max_applied_[si], basis);
    if (kv != nullptr) kv->note_lineage_rollback(s, basis);
  }
}

void DurabilityOracle::finalize() {
  if (service_ == nullptr) return;
  const uint64_t divergence = service_->total_divergence();
  if (divergence != 0) {
    std::ostringstream os;
    os << "lineage integrity: " << divergence
       << " boundary-CRC divergence audits across replica incarnations "
          "(recovering from disk must never revive a diverged lineage)";
    fail(os.str());
  }
}

std::string DurabilityOracle::report() const {
  std::string out;
  for (const auto& v : violations_) {
    out += "durability: " + v.what + "\n";
  }
  if (suppressed_ > 0) {
    std::ostringstream os;
    os << "durability: ... " << suppressed_
       << " further violations suppressed\n";
    out += os.str();
  }
  return out;
}

}  // namespace accelring::check
