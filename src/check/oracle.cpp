#include "check/oracle.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "harness/workload.hpp"
#include "multiring/ring_set.hpp"
#include "util/crc32.hpp"

namespace accelring::check {
namespace {

std::string ring_str(protocol::RingId ring) {
  std::ostringstream os;
  os << "(" << (ring >> 16) << "," << (ring & 0xFFFF) << ")";
  return os.str();
}

std::string members_str(const std::vector<protocol::ProcessId>& members) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < members.size(); ++i) {
    if (i) os << ",";
    os << members[i];
  }
  os << "}";
  return os.str();
}

bool is_subset(const std::vector<protocol::ProcessId>& sub,
               const std::vector<protocol::ProcessId>& super) {
  for (protocol::ProcessId p : sub) {
    if (std::find(super.begin(), super.end(), p) == super.end()) return false;
  }
  return true;
}

}  // namespace

ClusterOracle::ClusterOracle(int num_nodes, std::string label)
    : label_(std::move(label)),
      nodes_(static_cast<size_t>(num_nodes)) {}

void ClusterOracle::attach(harness::SimCluster& cluster) {
  cluster.add_on_deliver(
      [this](int node, const protocol::Delivery& d, Nanos) {
        on_deliver(node, d);
      });
  cluster.add_on_config(
      [this](int node, const protocol::ConfigurationChange& c) {
        on_config(node, c);
      });
}

void ClusterOracle::fail(std::string what) {
  if (!label_.empty()) what = label_ + ": " + what;
  violations_.push_back(Violation{std::move(what)});
}

void ClusterOracle::on_deliver(int node, const protocol::Delivery& d) {
  ++observed_;
  NodeState& ns = nodes_[static_cast<size_t>(node)];
  Rec rec;
  rec.ring = d.ring_id;
  rec.seq = d.seq;
  rec.sender = d.sender;
  rec.hash = util::crc32(d.payload);

  // Self-delivery bookkeeping: payloads the campaign stamped carry the
  // submitting node and a per-node index; only indices registered via
  // note_submit count (arbitrary payloads may alias a stamp).
  harness::PayloadStamp stamp;
  if (harness::parse_payload(d.payload, stamp) &&
      stamp.sender == static_cast<uint32_t>(node) &&
      ns.expected.count(stamp.index) > 0) {
    ns.self_seen.insert(stamp.index);
  }

  if (ns.segs.empty()) {
    fail("node " + std::to_string(node) + " delivered seq " +
         std::to_string(d.seq) + " of ring " + ring_str(d.ring_id) +
         " before any configuration");
    // Synthesize a matching regular segment so one early delivery does not
    // cascade into a violation per message.
    Seg seg;
    seg.change.config.ring_id = d.ring_id;
    seg.change.transitional = false;
    ns.segs.push_back(std::move(seg));
  }

  Seg& seg = ns.segs.back();
  const bool transitional = seg.change.transitional;

  // Which ring may deliver under this segment: the installed ring when
  // regular; the *previous* regular ring when transitional (EVS delivers the
  // old configuration's leftovers there). A bootstrap transitional (first
  // segment after discovery or cold restart) has no old ring with ordered
  // messages, so nothing may be delivered in it.
  protocol::RingId allowed_ring = seg.change.config.ring_id;
  if (transitional) {
    allowed_ring = 0;
    for (size_t i = ns.segs.size() - 1; i-- > 0;) {
      if (!ns.segs[i].change.transitional) {
        allowed_ring = ns.segs[i].change.config.ring_id;
        break;
      }
    }
    if (allowed_ring == 0) {
      fail("node " + std::to_string(node) +
           " delivered in a bootstrap transitional configuration " +
           ring_str(seg.change.config.ring_id));
      seg.recs.push_back(rec);
      return;
    }
  }
  if (rec.ring != allowed_ring) {
    fail("node " + std::to_string(node) + " delivered ring " +
         ring_str(rec.ring) + " seq " + std::to_string(rec.seq) +
         " under configuration " + ring_str(seg.change.config.ring_id) +
         (transitional ? " (transitional, old ring " + ring_str(allowed_ring) +
                             ")"
                       : ""));
    seg.recs.push_back(rec);
    return;
  }

  // Floor: where the ring's agreed sequence stood when this segment began.
  // Regular segments install a fresh ring, so the stream starts at 1; a
  // transitional segment continues the old ring past whatever the preceding
  // regular segment delivered.
  protocol::SeqNum prev = 0;
  bool have_prev = false;
  Rec prev_rec;
  if (!seg.recs.empty()) {
    prev_rec = seg.recs.back();
    prev = prev_rec.seq;
    have_prev = true;
  } else if (transitional) {
    for (size_t i = ns.segs.size() - 1; i-- > 0;) {
      if (!ns.segs[i].change.transitional) {
        if (!ns.segs[i].recs.empty()) {
          prev_rec = ns.segs[i].recs.back();
          prev = prev_rec.seq;
          have_prev = true;
        }
        break;
      }
    }
  }

  if (rec.seq < prev) {
    fail("node " + std::to_string(node) + " ring " + ring_str(rec.ring) +
         ": sequence went backwards, " + std::to_string(prev) + " -> " +
         std::to_string(rec.seq));
  } else if (rec.seq == prev && have_prev) {
    // Packed messages legitimately share a sequence number, but the same
    // (sender, payload) twice under one number is a duplicate delivery.
    if (prev_rec.sender == rec.sender && prev_rec.hash == rec.hash) {
      fail("node " + std::to_string(node) + " ring " + ring_str(rec.ring) +
           ": duplicate delivery of seq " + std::to_string(rec.seq) +
           " from sender " + std::to_string(rec.sender));
    }
  } else if (!transitional) {
    // Regular configuration: gapless after the first delivery. The stream
    // may open above seq 1 (recovery wrappers consume a prefix of a new
    // ring's sequence space); the cross-node prefix check still catches any
    // disagreement about where it opens.
    if (!have_prev) {
      if (rec.seq < 1) {
        fail("node " + std::to_string(node) + " ring " + ring_str(rec.ring) +
             ": first delivery has seq " + std::to_string(rec.seq));
      }
    } else if (rec.seq != prev + 1) {
      fail("node " + std::to_string(node) + " ring " + ring_str(rec.ring) +
           ": gap in agreed order, expected seq " + std::to_string(prev + 1) +
           " got " + std::to_string(rec.seq));
    }
  }
  // Transitional with rec.seq > prev: holes are permitted (EVS delivers what
  // survived, skipping holes no surviving member can fill).

  seg.recs.push_back(rec);
}

void ClusterOracle::on_config(int node,
                              const protocol::ConfigurationChange& change) {
  NodeState& ns = nodes_[static_cast<size_t>(node)];
  const auto& cfg = change.config;

  if (std::find(cfg.members.begin(), cfg.members.end(),
                static_cast<protocol::ProcessId>(node)) == cfg.members.end()) {
    fail("node " + std::to_string(node) + " installed configuration " +
         ring_str(cfg.ring_id) + " " + members_str(cfg.members) +
         " that does not contain itself");
  }

  const Seg* last = ns.segs.empty() ? nullptr : &ns.segs.back();
  if (change.transitional) {
    if (last != nullptr && last->change.transitional) {
      fail("node " + std::to_string(node) +
           " installed two transitional configurations in a row (" +
           ring_str(last->change.config.ring_id) + ", " +
           ring_str(cfg.ring_id) + ")");
    }
    // Members came along from the previous regular configuration, so they
    // must be a subset of it (skip for the bootstrap transitional, whose
    // implicit old ring is the singleton discovery ring).
    if (last != nullptr && !last->change.transitional &&
        !is_subset(cfg.members, last->change.config.members)) {
      fail("node " + std::to_string(node) + " transitional configuration " +
           ring_str(cfg.ring_id) + " " + members_str(cfg.members) +
           " is not a subset of the previous regular configuration " +
           members_str(last->change.config.members));
    }
  } else {
    if (last != nullptr && last->change.transitional) {
      if (!is_subset(last->change.config.members, cfg.members)) {
        fail("node " + std::to_string(node) +
             " transitional configuration " +
             members_str(last->change.config.members) +
             " is not a subset of the regular configuration " +
             ring_str(cfg.ring_id) + " " + members_str(cfg.members) +
             " that followed it");
      }
      if (last->change.config.ring_id != cfg.ring_id) {
        fail("node " + std::to_string(node) + " transitional ring id " +
             ring_str(last->change.config.ring_id) +
             " does not match the regular configuration " +
             ring_str(cfg.ring_id) + " that followed it");
      }
    }
    if (!ns.rings_installed.insert(cfg.ring_id).second) {
      // Legitimate after a cold restart (the fresh engine can recreate an
      // earlier singleton ring id); disables cross-node checks for the ring.
      ns.ring_reinstalled = true;
      reinstalled_.insert(cfg.ring_id);
    }
  }

  Seg seg;
  seg.change = change;
  ns.segs.push_back(std::move(seg));
}

void ClusterOracle::note_submit(int node, uint32_t index) {
  nodes_[static_cast<size_t>(node)].expected.insert(index);
}

void ClusterOracle::note_crash(int node) {
  nodes_[static_cast<size_t>(node)].crashed = true;
}

void ClusterOracle::note_restart(int node) {
  nodes_[static_cast<size_t>(node)].restarted = true;
}

void ClusterOracle::check_order_pair(int a, int b) {
  // Full per-ring streams: regular deliveries followed by the transitional
  // leftovers, in delivery order.
  auto streams = [this](int n) {
    std::map<protocol::RingId, std::vector<Rec>> out;
    for (const Seg& seg : nodes_[static_cast<size_t>(n)].segs) {
      for (const Rec& r : seg.recs) out[r.ring].push_back(r);
    }
    return out;
  };
  const auto sa = streams(a);
  const auto sb = streams(b);

  for (const auto& [ring, va] : sa) {
    const auto it = sb.find(ring);
    if (it == sb.end()) continue;
    if (reinstalled_.count(ring) > 0) continue;
    const auto& vb = it->second;

    // Occurrence-indexed identity -> position in a's stream.
    std::unordered_map<std::string, size_t> pos;
    std::unordered_map<std::string, int> occ_a;
    auto key = [](const Rec& r, int occ) {
      return std::to_string(r.seq) + "/" + std::to_string(r.sender) + "/" +
             std::to_string(r.hash) + "#" + std::to_string(occ);
    };
    for (size_t i = 0; i < va.size(); ++i) {
      pos[key(va[i], occ_a[key(va[i], 0)]++)] = i;
    }
    // Messages both nodes delivered must appear in the same relative order.
    std::unordered_map<std::string, int> occ_b;
    long last_pos = -1;
    protocol::SeqNum last_seq = -1;
    for (const Rec& r : vb) {
      const auto found = pos.find(key(r, occ_b[key(r, 0)]++));
      if (found == pos.end()) continue;
      if (static_cast<long>(found->second) <= last_pos) {
        fail("nodes " + std::to_string(a) + " and " + std::to_string(b) +
             " disagree on the order of ring " + ring_str(ring) +
             " around seq " + std::to_string(r.seq) + " (vs seq " +
             std::to_string(last_seq) + ")");
        return;
      }
      last_pos = static_cast<long>(found->second);
      last_seq = r.seq;
    }

    // The gapless regular portions are stronger than order-consistent: one
    // must be an exact prefix of the other.
    auto regular = [this, ring = ring](int n) {
      std::vector<Rec> out;
      for (const Seg& seg : nodes_[static_cast<size_t>(n)].segs) {
        if (seg.change.transitional) continue;
        for (const Rec& r : seg.recs) {
          if (r.ring == ring) out.push_back(r);
        }
      }
      return out;
    };
    const auto ra = regular(a);
    const auto rb = regular(b);
    const size_t n = std::min(ra.size(), rb.size());
    for (size_t i = 0; i < n; ++i) {
      if (!ra[i].same_message(rb[i])) {
        fail("nodes " + std::to_string(a) + " and " + std::to_string(b) +
             " delivered different messages at position " +
             std::to_string(i) + " of ring " + ring_str(ring) + ": seq " +
             std::to_string(ra[i].seq) + " sender " +
             std::to_string(ra[i].sender) + " vs seq " +
             std::to_string(rb[i].seq) + " sender " +
             std::to_string(rb[i].sender));
        return;
      }
    }
  }
}

void ClusterOracle::check_transitional_groups() {
  // Nodes that installed the same transitional configuration delivered the
  // same messages, in the same order, in it.
  struct Group {
    int node = -1;
    const Seg* seg = nullptr;
  };
  std::map<std::string, Group> groups;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    for (const Seg& seg : nodes_[n].segs) {
      if (!seg.change.transitional) continue;
      std::string id = ring_str(seg.change.config.ring_id) +
                       members_str(seg.change.config.members);
      auto [it, fresh] = groups.emplace(std::move(id), Group{});
      if (fresh) {
        it->second = Group{static_cast<int>(n), &seg};
        continue;
      }
      const Group& g = it->second;
      const bool same =
          seg.recs.size() == g.seg->recs.size() &&
          std::equal(seg.recs.begin(), seg.recs.end(), g.seg->recs.begin(),
                     [](const Rec& x, const Rec& y) {
                       return x.same_message(y);
                     });
      if (!same) {
        fail("nodes " + std::to_string(g.node) + " and " + std::to_string(n) +
             " delivered different message sets in transitional "
             "configuration " +
             ring_str(seg.change.config.ring_id) + " " +
             members_str(seg.change.config.members) + " (" +
             std::to_string(g.seg->recs.size()) + " vs " +
             std::to_string(seg.recs.size()) + " messages)");
      }
    }
  }
}

void ClusterOracle::check_configs() {
  // Two nodes that installed the same regular ring id agreed on its members.
  std::map<protocol::RingId, std::pair<int, std::vector<protocol::ProcessId>>>
      seen;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    for (const Seg& seg : nodes_[n].segs) {
      if (seg.change.transitional) continue;
      const auto ring = seg.change.config.ring_id;
      if (reinstalled_.count(ring) > 0) continue;
      auto [it, fresh] = seen.emplace(
          ring, std::make_pair(static_cast<int>(n), seg.change.config.members));
      if (!fresh && it->second.second != seg.change.config.members) {
        fail("nodes " + std::to_string(it->second.first) + " and " +
             std::to_string(n) + " installed regular configuration " +
             ring_str(ring) + " with different members: " +
             members_str(it->second.second) + " vs " +
             members_str(seg.change.config.members));
      }
    }
  }
}

void ClusterOracle::finalize(const harness::ClusterStats* stats) {
  if (finalized_) return;
  finalized_ = true;

  for (size_t a = 0; a < nodes_.size(); ++a) {
    for (size_t b = a + 1; b < nodes_.size(); ++b) {
      check_order_pair(static_cast<int>(a), static_cast<int>(b));
    }
  }
  check_transitional_groups();
  check_configs();

  for (size_t n = 0; n < nodes_.size(); ++n) {
    const NodeState& ns = nodes_[n];
    if (ns.crashed || ns.restarted) continue;  // obligation waived
    std::vector<uint32_t> missing;
    for (uint32_t idx : ns.expected) {
      if (ns.self_seen.count(idx) == 0) missing.push_back(idx);
    }
    const uint64_t rejected =
        stats != nullptr && n < stats->nodes.size()
            ? stats->nodes[n].engine.submit_rejected
            : 0;
    if (missing.size() > rejected) {
      std::ostringstream os;
      os << "node " << n << " never delivered " << missing.size()
         << " of its own " << ns.expected.size() << " submitted messages ("
         << rejected << " waived as rejected); first missing indices:";
      for (size_t i = 0; i < missing.size() && i < 5; ++i) {
        os << " " << missing[i];
      }
      fail(os.str());
    }
  }
}

std::string ClusterOracle::report() const {
  std::ostringstream os;
  for (const Violation& v : violations_) os << v.what << "\n";
  return os.str();
}

MergedOracle::MergedOracle(int num_nodes)
    : streams_(static_cast<size_t>(num_nodes)),
      inputs_(static_cast<size_t>(num_nodes)) {}

void MergedOracle::attach(multiring::RingSet& rings) {
  rings.add_on_merged([this](int node, int ring, const protocol::Delivery& d,
                             Nanos) { on_merged(node, ring, d); });
  for (int r = 0; r < rings.num_rings(); ++r) {
    rings.ring(r).add_on_deliver(
        [this, r](int node, const protocol::Delivery& d, Nanos) {
          on_ring_delivery(node, r, d);
        });
  }
}

void MergedOracle::on_ring_delivery(int node, int ring,
                                    const protocol::Delivery& d) {
  IRec rec;
  rec.ring_id = d.ring_id;
  rec.seq = d.seq;
  rec.sender = d.sender;
  rec.hash = util::crc32(d.payload);
  inputs_[static_cast<size_t>(node)][ring].push_back(rec);
}

void MergedOracle::fail(std::string what) {
  violations_.push_back(Violation{std::move(what)});
}

void MergedOracle::enable_handoff_audit(KeyFn key_of) {
  audit_ = true;
  key_fn_ = std::move(key_of);
}

void MergedOracle::on_merged(int node, int ring,
                             const protocol::Delivery& d) {
  ++observed_;
  MRec rec;
  rec.ring = ring;
  rec.seq = d.seq;
  rec.sender = d.sender;
  rec.hash = util::crc32(d.payload);
  if (audit_) {
    if (const auto marker = multiring::decode_marker(d.payload)) {
      rec.marker = static_cast<uint8_t>(marker->kind);
      rec.version = marker->version;
      rec.marker_ring = marker->ring;
      if (marker->kind == multiring::MarkerKind::kFreeze) {
        const auto it = plans_.find(marker->version);
        if (it == plans_.end()) {
          plans_[marker->version] = marker->moves;
        } else if (!(it->second == marker->moves)) {
          fail("freeze markers for map version " +
               std::to_string(marker->version) +
               " carry different move lists — plan divergence");
        }
      }
    } else if (key_fn_) {
      if (const auto kp = key_fn_(d)) {
        rec.has_key = 1;
        rec.key = kp->key;
        rec.submitter = kp->submitter;
        rec.index = kp->index;
      }
    }
  }
  streams_[static_cast<size_t>(node)].push_back(rec);
}

void MergedOracle::check_handoffs() {
  // Per-node walk: replay the markers into per-plan handoff state and hold
  // every keyed delivery against the owner that state implies at that merged
  // position. The state machine is exactly the ShardRouter's, so the oracle
  // independently re-derives where the switch must happen.
  struct PlanState {
    std::vector<multiring::MigrationMove> moves;
    std::set<int> frozen;
    std::set<int> drained;
    std::set<int> activated;
    bool freeze_seen = false;
  };
  for (size_t n = 0; n < streams_.size(); ++n) {
    const std::string who = "node " + std::to_string(n);
    std::map<uint64_t, PlanState> plans;  // plan version, ascending
    std::map<std::pair<uint64_t, uint32_t>, uint32_t> last_index;
    for (const MRec& r : streams_[n]) {
      if (r.marker != 0) {
        PlanState& ps = plans[r.version];
        const std::string v = " (map version " + std::to_string(r.version) +
                              ", ring " + std::to_string(r.marker_ring) + ")";
        switch (static_cast<multiring::MarkerKind>(r.marker)) {
          case multiring::MarkerKind::kFreeze:
            ps.freeze_seen = true;
            ps.moves = plans_[r.version];
            ps.frozen.insert(r.marker_ring);
            break;
          case multiring::MarkerKind::kDrain:
            if (ps.frozen.count(r.marker_ring) == 0) {
              fail(who + " merged a drain marker before its freeze" + v);
            }
            ps.drained.insert(r.marker_ring);
            break;
          case multiring::MarkerKind::kActivate:
            if (!ps.freeze_seen) {
              fail(who + " merged an activate marker before any freeze" + v);
            }
            for (const multiring::MigrationMove& mv : ps.moves) {
              if (ps.drained.count(mv.src) == 0) {
                fail(who + " merged an activate marker before source ring " +
                     std::to_string(mv.src) + " drained" + v);
                break;
              }
            }
            ps.activated.insert(r.marker_ring);
            break;
        }
        continue;
      }
      if (r.has_key == 0) continue;
      // The newest plan mentioning the key governs its ownership (plans are
      // built sequentially, so an older plan's destination is the newer
      // plan's source).
      const multiring::MigrationMove* mv = nullptr;
      const PlanState* ps = nullptr;
      for (auto it = plans.rbegin(); it != plans.rend() && mv == nullptr;
           ++it) {
        for (const multiring::MigrationMove& m : it->second.moves) {
          if (m.range.contains(r.key)) {
            mv = &m;
            ps = &it->second;
            break;
          }
        }
      }
      if (mv != nullptr) {
        const std::string what = " key " + std::to_string(r.key) +
                                 " (submitter " + std::to_string(r.submitter) +
                                 " index " + std::to_string(r.index) +
                                 ") from ring " + std::to_string(r.ring);
        if (ps->activated.count(mv->dst) != 0) {
          if (r.ring != mv->dst) {
            fail(who + " delivered" + what + " after its handoff to ring " +
                 std::to_string(mv->dst) +
                 " activated — stale-owner delivery");
          }
        } else if (ps->drained.count(mv->src) != 0) {
          fail(who + " delivered" + what +
               " inside the handoff hold window (source " +
               std::to_string(mv->src) + " drained, destination " +
               std::to_string(mv->dst) + " not yet active)");
        } else if (r.ring != mv->src) {
          fail(who + " delivered" + what + " but ring " +
               std::to_string(mv->src) + " still owns the range");
        }
      }
      // FIFO continuity across handoffs: a submitter's stamp indices for one
      // key must strictly increase along the merged stream — a repeat is a
      // duplicated delivery (e.g. flushed to both sides of a handoff), a
      // decrease is a reorder across the switch point.
      const auto id = std::make_pair(r.key, r.submitter);
      const auto f = last_index.find(id);
      if (f != last_index.end() && r.index <= f->second) {
        fail(who + " saw stamp index " + std::to_string(r.index) +
             " for key " + std::to_string(r.key) + " submitter " +
             std::to_string(r.submitter) + " after index " +
             std::to_string(f->second) +
             " — duplicated or reordered across a handoff");
      } else {
        last_index[id] = r.index;
      }
    }
  }

  // Deterministic switch point across nodes: per ring, every node must see
  // the same marker sequence (a node that stopped early sees a prefix).
  auto markers_of = [this](size_t n, int ring) {
    std::vector<MRec> out;
    for (const MRec& r : streams_[n]) {
      if (r.marker != 0 && r.ring == ring) out.push_back(r);
    }
    return out;
  };
  std::set<int> marker_rings;
  for (const auto& stream : streams_) {
    for (const MRec& r : stream) {
      if (r.marker != 0) marker_rings.insert(r.ring);
    }
  }
  for (const int ring : marker_rings) {
    for (size_t a = 0; a < streams_.size(); ++a) {
      for (size_t b = a + 1; b < streams_.size(); ++b) {
        const auto ma = markers_of(a, ring);
        const auto mb = markers_of(b, ring);
        const size_t m = std::min(ma.size(), mb.size());
        for (size_t i = 0; i < m; ++i) {
          if (ma[i].marker != mb[i].marker ||
              ma[i].version != mb[i].version ||
              ma[i].marker_ring != mb[i].marker_ring) {
            fail("nodes " + std::to_string(a) + " and " + std::to_string(b) +
                 " disagree on the handoff marker order of ring " +
                 std::to_string(ring) + " at marker " + std::to_string(i) +
                 " — non-deterministic switch point");
            break;
          }
        }
      }
    }
  }
}

void MergedOracle::finalize() {
  if (audit_) check_handoffs();
  // Per-node, per-ring input sub-streams (the merger preserves each ring's
  // delivery order, so the merged stream restricted to one ring IS that
  // ring's input as this node saw it).
  auto substreams = [this](size_t n) {
    std::map<int, std::vector<MRec>> out;
    for (const MRec& r : streams_[n]) out[r.ring].push_back(r);
    return out;
  };

  auto prefix_related = [](const auto& x, const auto& y) {
    const size_t n = std::min(x.size(), y.size());
    for (size_t i = 0; i < n; ++i) {
      if (!(x[i] == y[i])) return false;
    }
    return true;
  };

  for (size_t a = 0; a < streams_.size(); ++a) {
    for (size_t b = a + 1; b < streams_.size(); ++b) {
      const auto sa = substreams(a);
      const auto sb = substreams(b);

      // The merge is a deterministic function of the per-ring inputs: when
      // the two nodes' inputs are prefix-related for every ring, their
      // merged streams must be prefix-related too. When some component ring
      // underwent a membership split (loss can partition an EVS ring into
      // views that deliver genuinely different messages, skip streams, and
      // sequence spaces), the inputs diverge and the interleavings may
      // legitimately differ — fall back to content-order consistency below;
      // the per-ring ClusterOracles still enforce the EVS contract inside
      // each lineage. Prefer the true pre-merge input streams recorded via
      // attach() (they include skips the merge consumed without emitting);
      // fall back to the emitted sub-streams when the oracle was fed by
      // hand.
      bool inputs_prefix = true;
      if (!inputs_[a].empty() || !inputs_[b].empty()) {
        for (const auto& [ring, va] : inputs_[a]) {
          const auto it = inputs_[b].find(ring);
          if (it != inputs_[b].end() && !prefix_related(va, it->second)) {
            inputs_prefix = false;
            break;
          }
        }
      } else {
        for (const auto& [ring, va] : sa) {
          const auto it = sb.find(ring);
          if (it != sb.end() && !prefix_related(va, it->second)) {
            inputs_prefix = false;
            break;
          }
        }
      }

      if (inputs_prefix) {
        const auto& va = streams_[a];
        const auto& vb = streams_[b];
        const size_t n = std::min(va.size(), vb.size());
        for (size_t i = 0; i < n; ++i) {
          if (!(va[i] == vb[i])) {
            fail("merged streams of nodes " + std::to_string(a) + " and " +
                 std::to_string(b) + " diverge at position " +
                 std::to_string(i) + ": ring " + std::to_string(va[i].ring) +
                 " seq " + std::to_string(va[i].seq) + " sender " +
                 std::to_string(va[i].sender) + " vs ring " +
                 std::to_string(vb[i].ring) + " seq " +
                 std::to_string(vb[i].seq) + " sender " +
                 std::to_string(vb[i].sender));
            break;
          }
        }
        continue;
      }

      // Split-tolerant check: two messages (identified by sender and
      // payload; occurrence-indexed) that both nodes emitted from the same
      // ring must appear in the same relative order. EVS guarantees this
      // across view splits — only an ordering bug can flip it.
      for (const auto& [ring, va] : sa) {
        const auto it = sb.find(ring);
        if (it == sb.end()) continue;
        const auto& vb = it->second;
        auto key = [](const MRec& r, int occ) {
          return std::to_string(r.sender) + "/" + std::to_string(r.hash) +
                 "#" + std::to_string(occ);
        };
        std::unordered_map<std::string, size_t> pos;
        std::unordered_map<std::string, int> occ_a;
        for (size_t i = 0; i < va.size(); ++i) {
          pos[key(va[i], occ_a[key(va[i], 0)]++)] = i;
        }
        std::unordered_map<std::string, int> occ_b;
        long last = -1;
        for (const MRec& r : vb) {
          const auto found = pos.find(key(r, occ_b[key(r, 0)]++));
          if (found == pos.end()) continue;
          if (static_cast<long>(found->second) <= last) {
            fail("merged streams of nodes " + std::to_string(a) + " and " +
                 std::to_string(b) + " diverge on the content order of ring " +
                 std::to_string(ring) + " around seq " + std::to_string(r.seq) +
                 " sender " + std::to_string(r.sender));
            break;
          }
          last = static_cast<long>(found->second);
        }
      }
    }
  }
}

std::string MergedOracle::report() const {
  std::ostringstream os;
  for (const Violation& v : violations_) os << v.what << "\n";
  return os.str();
}

std::string join_reports(
    const std::vector<const std::vector<Violation>*>& lists) {
  std::ostringstream os;
  for (const auto* list : lists) {
    for (const Violation& v : *list) os << v.what << "\n";
  }
  return os.str();
}

}  // namespace accelring::check
