// Protocol safety oracles: always-on observers that attach to a running
// SimCluster (and, for multi-ring runs, a RingSet) and check the paper's
// correctness properties on the delivery streams as they happen.
//
// ClusterOracle watches one ring's cluster and asserts, per node and across
// nodes, the Extended Virtual Synchrony delivery contract (§II):
//
//  * Agreed order is gapless: within one regular configuration, sequence
//    numbers start at 1 and advance by at most one step per delivery (packed
//    messages legitimately share a sequence number).
//  * No duplicates: a (seq, sender, payload) triple is never delivered twice
//    in a row under one sequence number.
//  * Deliveries are bracketed by configurations: every message arrives under
//    the regular configuration of its ring, or under the transitional
//    configuration that follows it (where holes are permitted but order must
//    still advance).
//  * Prefix-consistent total order: any two nodes' delivery streams for one
//    ring agree on the relative order of every message they both delivered,
//    and their regular (pre-transitional) portions are exact prefixes of one
//    another.
//  * Transitional agreement: nodes that install the same transitional
//    configuration deliver exactly the same messages, in the same order, in
//    it.
//  * Virtual-synchrony configuration sanity: a node appears in every
//    configuration delivered to it, the transitional membership is a subset
//    of both the old and the new regular membership, and two nodes that
//    install the same regular ring id saw identical member lists.
//  * Self-delivery: every message a node submitted comes back to it, unless
//    the node crashed or the engine rejected the submit under backpressure.
//
// MergedOracle watches the K-ring merged streams and asserts that any two
// nodes' merged total orders are prefixes of each other whenever their
// per-ring inputs are prefix-related (the merge is deterministic over its
// inputs). When a component ring's membership split under faults — EVS
// views legitimately deliver different messages to different sides — the
// interleavings may differ, and the oracle falls back to content-order
// consistency: messages both nodes emitted from one ring must appear in
// the same relative order.
//
// Oracles never throw: violations accumulate with enough context to debug
// from the report alone, and the campaign runner (campaign.hpp) attaches the
// failing seed and schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "multiring/migration.hpp"
#include "protocol/types.hpp"

namespace accelring::multiring {
class RingSet;
}  // namespace accelring::multiring

namespace accelring::check {

using protocol::Nanos;

/// One failed safety property, in human-readable form.
struct Violation {
  std::string what;
};

class ClusterOracle {
 public:
  /// `label` prefixes every violation (e.g. "ring 2" in multi-ring runs).
  explicit ClusterOracle(int num_nodes, std::string label = "");

  /// Subscribe to a cluster's delivery and configuration streams. The oracle
  /// must outlive the cluster's run.
  void attach(harness::SimCluster& cluster);

  // Direct feeds, used by attach() and by unit tests that replay
  // hand-crafted histories.
  void on_deliver(int node, const protocol::Delivery& delivery);
  void on_config(int node, const protocol::ConfigurationChange& change);

  /// The workload submitted message `index` at `node` (stamped into the
  /// payload); finalize() checks it came back unless waived.
  void note_submit(int node, uint32_t index);
  /// `node` was crashed: waive its self-delivery obligation.
  void note_crash(int node);
  /// `node` was cold-restarted: also waive self-delivery (pre-crash state,
  /// including rejected-submit counts, is gone).
  void note_restart(int node);

  /// Run the cross-node checks. Call once, after the run drained. `stats`
  /// (optional) supplies per-node submit_rejected counts for the
  /// self-delivery waiver.
  void finalize(const harness::ClusterStats* stats = nullptr);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  /// All violations joined into one printable block (empty string when ok).
  [[nodiscard]] std::string report() const;

  /// Deliveries observed across all nodes (for sanity in tests).
  [[nodiscard]] uint64_t observed() const { return observed_; }

 private:
  /// One recorded delivery, reduced to its identity.
  struct Rec {
    protocol::RingId ring = 0;
    protocol::SeqNum seq = 0;
    protocol::ProcessId sender = protocol::kNoProcess;
    uint32_t hash = 0;  ///< crc32 of the payload
    [[nodiscard]] bool same_message(const Rec& o) const {
      return ring == o.ring && seq == o.seq && sender == o.sender &&
             hash == o.hash;
    }
  };
  /// Deliveries observed under one installed configuration.
  struct Seg {
    protocol::ConfigurationChange change;
    std::vector<Rec> recs;
  };
  struct NodeState {
    std::vector<Seg> segs;
    bool crashed = false;
    bool restarted = false;
    std::set<uint64_t> rings_installed;  ///< regular ring ids seen
    bool ring_reinstalled = false;       ///< same regular ring id twice
    std::set<uint32_t> expected;         ///< submitted message indices
    std::set<uint32_t> self_seen;        ///< ... that came back
  };

  void fail(std::string what);
  void check_order_pair(int a, int b);
  void check_transitional_groups();
  void check_configs();

  std::string label_;
  std::vector<NodeState> nodes_;
  std::set<protocol::RingId> reinstalled_;  ///< rings any node saw twice
  std::vector<Violation> violations_;
  uint64_t observed_ = 0;
  bool finalized_ = false;
};

class MergedOracle {
 public:
  explicit MergedOracle(int num_nodes);

  /// Subscribe to the ring set's merged streams (add_on_merged) and to each
  /// component ring's delivery stream (the merger's true inputs, including
  /// skip messages the merge consumes without emitting).
  void attach(multiring::RingSet& rings);

  void on_merged(int node, int ring, const protocol::Delivery& delivery);
  /// A component ring delivered to `node` (pre-merge input).
  void on_ring_delivery(int node, int ring,
                        const protocol::Delivery& delivery);

  /// Identity of one keyed workload payload, recomputed from the payload
  /// itself (the campaign stamps (submitter, index); the key is a pure
  /// function of those, so the oracle never needs extra wire bytes).
  struct KeyedPayload {
    uint64_t key = 0;  ///< mixed routing key, ShardMap hash space
    uint32_t submitter = 0;
    uint32_t index = 0;
  };
  using KeyFn =
      std::function<std::optional<KeyedPayload>(const protocol::Delivery&)>;

  /// Turn on the live-migration handoff audit. Merged handoff markers
  /// (migration.hpp) are decoded into the record stream, and finalize()
  /// additionally proves, per node and per moving key:
  ///   - marker sanity: freeze before drain per source, every source drained
  ///     before any activate of the same plan version;
  ///   - ownership exclusivity: before the drain the key's deliveries come
  ///     from the source ring, between drain and activation *nobody* may
  ///     deliver it, after activation only the destination (no dup, and the
  ///     switch happens at the marker, deterministically);
  ///   - per-(key, submitter) stamp indices strictly increase across the
  ///     whole merged stream — FIFO continuity across the handoff, no
  ///     duplicated or reordered delivery;
  /// and across nodes: every ring's marker sequence is prefix-related, so
  /// all nodes switch deliverers at the same merged positions.
  void enable_handoff_audit(KeyFn key_of);

  /// Cross-node prefix check over the merged streams. Call once after drain.
  void finalize();

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::string report() const;
  [[nodiscard]] uint64_t observed() const { return observed_; }

 private:
  struct MRec {
    int ring = -1;
    protocol::SeqNum seq = 0;
    protocol::ProcessId sender = protocol::kNoProcess;
    uint32_t hash = 0;
    // Handoff-audit decoration (constant defaults when the audit is off, so
    // the default operator== keeps its old meaning).
    uint8_t marker = 0;    ///< 0 = data, else MarkerKind
    uint64_t version = 0;  ///< marker plan version
    int marker_ring = -1;  ///< ring named inside the marker
    uint8_t has_key = 0;
    uint64_t key = 0;
    uint32_t submitter = 0;
    uint32_t index = 0;
    [[nodiscard]] bool operator==(const MRec&) const = default;
  };
  /// A pre-merge input record; carries the ring id so view changes within a
  /// component ring register as input divergence.
  struct IRec {
    protocol::RingId ring_id = 0;
    protocol::SeqNum seq = 0;
    protocol::ProcessId sender = protocol::kNoProcess;
    uint32_t hash = 0;
    [[nodiscard]] bool operator==(const IRec&) const = default;
  };

  void fail(std::string what);
  void check_handoffs();

  KeyFn key_fn_;
  bool audit_ = false;
  /// Plan move lists harvested from freeze markers, per plan version; a
  /// later freeze disagreeing with the harvested plan is itself a violation.
  std::map<uint64_t, std::vector<multiring::MigrationMove>> plans_;

  std::vector<std::vector<MRec>> streams_;  // per node
  /// Per node, per ring index: the merger's input stream (empty when the
  /// oracle was fed via on_merged only, e.g. in unit tests).
  std::vector<std::map<int, std::vector<IRec>>> inputs_;
  std::vector<Violation> violations_;
  uint64_t observed_ = 0;
};

/// Join violations from several oracles into one report block.
[[nodiscard]] std::string join_reports(
    const std::vector<const std::vector<Violation>*>& lists);

}  // namespace accelring::check
