#include "check/client_fleet.hpp"

#include <algorithm>
#include <string>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace accelring::check {
namespace {

/// Application payload: [u64 uuid][u64 accepted-send index][zero padding].
std::vector<std::byte> stamp_payload(uint64_t uuid, uint64_t index,
                                     size_t size) {
  util::Writer w(std::max<size_t>(size, 16));
  w.u64(uuid);
  w.u64(index);
  for (size_t i = 16; i < size; ++i) w.u8(0);
  return std::move(w).take();
}

bool read_stamp(std::span<const std::byte> payload, uint64_t& uuid,
                uint64_t& index) {
  util::Reader r(payload);
  uuid = r.u64();
  index = r.u64();
  return r.ok();
}

}  // namespace

ClientFleet::ClientFleet(harness::SimCluster& cluster, FleetOptions opt)
    : cluster_(cluster),
      opt_(opt),
      daemons_(static_cast<size_t>(cluster.size())),
      node_crashed_(static_cast<size_t>(cluster.size()), false),
      node_excluded_(static_cast<size_t>(cluster.size()), false) {
  for (int node = 0; node < cluster_.size(); ++node) {
    daemons_[static_cast<size_t>(node)] = std::make_unique<daemon::Daemon>(
        static_cast<protocol::ProcessId>(node), cluster_.engine(node),
        opt_.daemon);
  }
  // Route each node's engine stream into whatever daemon currently serves
  // that node (none while it is crashed).
  cluster_.add_on_deliver(
      [this](int node, const protocol::Delivery& d, Nanos) {
        if (auto& daemon = daemons_[static_cast<size_t>(node)]) {
          daemon->on_delivery(d);
        }
      });
  cluster_.add_on_config(
      [this](int node, const protocol::ConfigurationChange& change) {
        if (!change.transitional) {
          for (int n = 0; n < cluster_.size(); ++n) {
            const auto pid = static_cast<protocol::ProcessId>(n);
            bool member = false;
            for (const auto m : change.config.members) {
              member = member || m == pid;
            }
            if (!member) node_excluded_[static_cast<size_t>(n)] = true;
          }
        }
        if (auto& daemon = daemons_[static_cast<size_t>(node)]) {
          daemon->on_configuration(change);
        }
      });

  util::Rng seeder(opt_.seed);
  for (int node = 0; node < cluster_.size(); ++node) {
    for (int k = 0; k < opt_.clients_per_node; ++k) {
      auto rec = std::make_unique<ClientRec>();
      rec->node = node;
      rec->uuid = (static_cast<uint64_t>(node + 1) << 16) |
                  static_cast<uint64_t>(k + 1);
      ClientRec* raw = rec.get();
      rec->client = std::make_unique<daemon::FailoverClient>(
          [this, node]() { return daemons_[static_cast<size_t>(node)].get(); },
          [this](Nanos delay, std::function<void()> fn) {
            cluster_.eq().schedule_after(delay, std::move(fn));
          },
          "c" + std::to_string(node) + "." + std::to_string(k), rec->uuid,
          util::Backoff(opt_.backoff_base, opt_.backoff_cap, seeder.next()),
          [raw](const std::string&, const std::string&, daemon::Service,
                std::span<const std::byte> payload) {
            uint64_t uuid = 0;
            uint64_t index = 0;
            if (read_stamp(payload, uuid, index)) {
              ++raw->seen[{uuid, index}];
            }
          });
      clients_.push_back(std::move(rec));
    }
  }
}

void ClientFleet::start(Nanos horizon) {
  simnet::EventQueue& eq = cluster_.eq();
  for (auto& rec : clients_) {
    daemon::FailoverClient* client = rec->client.get();
    eq.schedule_after(0, [client] {
      client->connect();
      client->join("load");
    });
  }
  const int total = static_cast<int>(clients_.size());
  const int64_t shots =
      (horizon - opt_.workload_start) / opt_.send_interval;
  for (int c = 0; c < total; ++c) {
    ClientRec* rec = clients_[static_cast<size_t>(c)].get();
    const Nanos phase = opt_.send_interval * c / std::max(total, 1);
    for (int64_t k = 0; k < shots; ++k) {
      eq.schedule_after(opt_.workload_start + opt_.send_interval * k + phase,
                        [this, rec] { send_one(*rec); });
    }
  }
}

void ClientFleet::send_one(ClientRec& rec) {
  const uint64_t index = rec.next_index;
  const auto payload = stamp_payload(rec.uuid, index, opt_.payload_size);
  if (rec.client->send("load", daemon::Service::kAgreed, payload)) {
    // Accepted sends are numbered 1,2,3... by the client library, so our
    // index tracks the session-frame seq exactly.
    accepted_[rec.uuid].insert(index);
    ++rec.next_index;
  } else {
    ++dropped_;
  }
}

void ClientFleet::on_crash(int node) {
  node_crashed_[static_cast<size_t>(node)] = true;
  if (auto& daemon = daemons_[static_cast<size_t>(node)]) {
    daemon_slowdowns_ += daemon->stats().slowdowns;
    daemon.reset();
  }
  for (auto& rec : clients_) {
    if (rec->node == node) rec->client->notify_disconnect();
  }
}

void ClientFleet::on_restart(int node) {
  daemons_[static_cast<size_t>(node)] = std::make_unique<daemon::Daemon>(
      static_cast<protocol::ProcessId>(node), cluster_.engine(node),
      opt_.daemon);
}

void ClientFleet::burst(int node, uint32_t count) {
  std::vector<ClientRec*> local;
  for (auto& rec : clients_) {
    if (rec->node == node) local.push_back(rec.get());
  }
  if (local.empty()) return;
  for (uint32_t i = 0; i < count; ++i) {
    send_one(*local[i % local.size()]);
  }
}

FleetReport ClientFleet::finalize() {
  FleetReport report;
  report.dropped = dropped_;
  report.slowdowns = daemon_slowdowns_;
  for (const auto& daemon : daemons_) {
    if (daemon) report.slowdowns += daemon->stats().slowdowns;
  }

  auto fail = [&report](std::string what) {
    report.violations.push_back({std::move(what)});
  };

  for (const auto& rec : clients_) {
    const auto& stats = rec->client->stats();
    report.reconnects += stats.reconnects;
    report.duplicates_suppressed += stats.duplicates_suppressed;
    for (const auto& [key, copies] : rec->seen) {
      report.delivered += static_cast<uint64_t>(copies);
      if (copies > 1) {
        fail("client " + rec->client->name() + " saw uuid=" +
             std::to_string(key.first) + " seq=" +
             std::to_string(key.second) + " " + std::to_string(copies) +
             " times (duplicate delivery)");
      }
    }
  }

  auto exempt = [this](int node) {
    return node_crashed_[static_cast<size_t>(node)] ||
           node_excluded_[static_cast<size_t>(node)];
  };
  for (const auto& rec : clients_) {
    // A node whose daemon is down at the end (crash never restarted, e.g.
    // in a shrunk schedule) legitimately strands its clients' outboxes.
    if (daemons_[static_cast<size_t>(rec->node)] == nullptr) continue;
    if (!rec->client->connected()) {
      fail("client " + rec->client->name() +
           " not reconnected although its daemon is up");
      continue;
    }
    if (rec->client->unacked() != 0) {
      fail("client " + rec->client->name() + " ended with " +
           std::to_string(rec->client->unacked()) + " unacked sends");
      continue;
    }
    // A sender whose node dropped out of a view may have had sends ordered
    // (and acked) in a minority configuration; no global obligation then.
    if (exempt(rec->node)) continue;
    // Everything this client had accepted is acked: each of those messages
    // must have reached every client on a node that stayed in the ring,
    // exactly once.
    const auto it = accepted_.find(rec->uuid);
    if (it == accepted_.end()) continue;
    for (const auto& receiver : clients_) {
      if (exempt(receiver->node)) continue;
      for (const uint64_t seq : it->second) {
        const auto seen = receiver->seen.find({rec->uuid, seq});
        if (seen == receiver->seen.end()) {
          fail("client " + receiver->client->name() + " never saw uuid=" +
               std::to_string(rec->uuid) + " seq=" + std::to_string(seq) +
               " acked by " + rec->client->name() + " (lost delivery)");
        }
      }
    }
  }

  for (const auto& [uuid, seqs] : accepted_) {
    report.sent += static_cast<uint64_t>(seqs.size());
  }
  report.ok = report.violations.empty();
  return report;
}

}  // namespace accelring::check
