// KV service safety oracle.
//
// Attaches to a running kv::KvService and checks the service-level
// correctness properties on the applied-command, lease-grant, and
// client-outcome streams as they happen (the protocol-level EVS properties
// stay with ClusterOracle; this layer checks what the KV stack builds on
// top of them):
//
//  * Replica agreement — every (shard, version) is produced by exactly one
//    logical mutation: the first node to apply it fixes (key, value CRC,
//    present), and every other node's apply of that version must match.
//    Catches state-machine divergence end to end, including through chunked
//    state transfer and suffix replay.
//  * Version monotonicity — a node's applied version per shard never goes
//    backwards, and an effective mutation advances it by exactly one.
//  * Read correctness — every GET outcome (ordered or lease-served) must
//    return exactly the value the per-key mutation history prescribes at
//    the outcome's version. The observing node applied every version up to
//    the read's version before serving it, and the oracle records applies
//    before outcomes resolve, so the history is always complete enough to
//    judge the read. (SCANs are exercised but not content-checked.)
//  * Session guarantees — per session and shard: reads never return a
//    version below the session's last acked write (read-your-writes), and
//    read versions never regress (monotonic reads).
//  * Lease exclusivity, the "zero stale lease reads" property — grants are
//    totally ordered per shard; once any read has been served under grant
//    g, no read may ever be served under an earlier grant. A deposed or
//    expired leaseholder sneaking in a late local read trips this.
//
// The oracle requires preload_keys == 0 (preloaded values bump versions
// without emitting apply events, which would leave holes in the history).
// Like the protocol oracles it never throws; violations accumulate and the
// campaign attaches seed + schedule.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "kv/service.hpp"

namespace accelring::check {

class KvOracle {
 public:
  KvOracle() = default;

  /// Subscribe to the service's applied / lease-grant / outcome observers
  /// (claims all three slots). The oracle must outlive the run.
  void attach(kv::KvService& service);

  /// Like attach(), but without claiming the observer slots: sizes and the
  /// catch-up-replay waiver come from the service, events arrive through
  /// the direct feeds. The durable campaign path uses this to fan one set
  /// of service observers out to several oracles.
  void bind(kv::KvService& service);

  // Direct feeds (used by attach() and by tests replaying histories).
  void on_applied(int node, int shard, const kv::AppliedOp& applied,
                  Nanos at);
  void on_lease_grant(int node, int shard, const kv::LeaseId& id, Nanos at);
  void on_outcome(int node, const kv::Frontend::Outcome& outcome);

  /// `node` was cold-restarted: its replicas' versions restart from a state
  /// transfer, so its per-node monotonicity floors reset.
  void note_restart(int node);

  /// The service installed a shard-map handoff (KvService::apply_map):
  /// routing for moved keys may switch shards exactly at this point, and
  /// moved keys start fresh histories on their new shard. The oracle's
  /// routing-continuity check uses these epochs: a key whose outcomes hop
  /// shards with *no* intervening map change was rerouted outside any
  /// handoff — the KV-level stale-map bug — and is a violation.
  void note_map_change(uint64_t to_version);

  /// Cluster-wide recovery rolled `shard`'s authoritative history back to
  /// `version` (the highest durable position across the recovered nodes).
  /// Mutations above it are gone from the revived lineage and their version
  /// numbers will be re-minted by new writes, so the oracle erases the lost
  /// suffix and clamps session floors to the surviving history. Whether the
  /// lost suffix was *allowed* to be lost is the DurabilityOracle's check,
  /// not this one's.
  void note_lineage_rollback(int shard, uint64_t version);

  void finalize() { finalized_ = true; }

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::string report() const;
  /// Events observed (applies + grants + outcomes), for test sanity.
  [[nodiscard]] uint64_t observed() const { return observed_; }
  [[nodiscard]] uint64_t lease_serves() const { return lease_serves_; }

 private:
  /// The agreed effect of one (shard, version): fixed by its first apply.
  struct MutRec {
    std::string key;
    uint32_t value_crc = 0;
    bool present = false;  ///< false = the mutation deleted the key
  };
  struct KeyState {
    uint32_t value_crc = 0;
    bool present = false;
  };

  void fail(std::string what);

  int shards_ = 0;
  /// Attached service (null when fed directly by tests): consulted to tell
  /// catch-up-replay applies from live ones.
  kv::KvService* service_ = nullptr;
  /// Per shard: version -> agreed mutation effect.
  std::vector<std::map<uint64_t, MutRec>> history_;
  /// Per shard: key -> version -> state after that version.
  std::vector<std::map<std::string, std::map<uint64_t, KeyState>>> by_key_;
  /// Per (node, shard): highest applied version seen (-1 = none yet).
  std::vector<std::vector<int64_t>> last_version_;
  /// Per shard: grant -> global ordinal (first-observation order), the next
  /// ordinal, per-(node, shard) last observed ordinal, and the highest
  /// ordinal that has served a read.
  std::vector<std::map<kv::LeaseId, uint64_t>> grant_ordinal_;
  std::vector<uint64_t> next_ordinal_;
  std::vector<std::vector<int64_t>> last_grant_seen_;
  std::vector<int64_t> max_served_;
  /// Per session: per shard, last acked write version and last read version.
  std::map<uint64_t, std::map<int, uint64_t>> write_floor_;
  std::map<uint64_t, std::map<int, uint64_t>> read_floor_;
  /// Routing continuity: map epoch (count of note_map_change calls, with the
  /// last announced map version), and per key the (shard, epoch) of its most
  /// recent outcome.
  uint64_t map_epoch_ = 0;
  uint64_t map_version_ = 0;
  std::map<std::string, std::pair<int, uint64_t>> key_route_;

  std::vector<Violation> violations_;
  uint64_t suppressed_ = 0;  ///< violations beyond the report cap
  uint64_t observed_ = 0;
  uint64_t lease_serves_ = 0;
  bool finalized_ = false;
};

}  // namespace accelring::check
