// Simulated cluster assembly: N nodes, one switch, one protocol engine per
// node, wired per one of the paper's three implementation profiles.
//
// The profiles (paper §I, §IV) differ in where the protocol engine runs and
// what each message crosses on its way to the application:
//
//  * Library — the engine is embedded in the application process. Delivery
//    is an in-process callback; messages carry no extra header.
//  * Daemon  — the engine runs in a daemon; one sending and one receiving
//    client per node talk to it over IPC. Injection and delivery each cost
//    daemon CPU (the IPC read/write) and IPC latency.
//  * Spread  — the daemon profile plus production-system overheads: large
//    message headers (group and sender names) and group-routing work on
//    every delivery. Uses the conservative token-priority method, as shipped
//    in Spread 4.4.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "membership/epoch_store.hpp"
#include "obs/metrics.hpp"
#include "storage/epoch_store.hpp"
#include "storage/sim_disk.hpp"
#include "protocol/engine.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/network.hpp"
#include "simnet/process.hpp"
#include "transport/sim_host.hpp"
#include "util/trace.hpp"

namespace accelring::harness {

using protocol::Nanos;

enum class ImplProfile { kLibrary, kDaemon, kSpread };

[[nodiscard]] constexpr const char* profile_name(ImplProfile p) {
  switch (p) {
    case ImplProfile::kLibrary:
      return "library";
    case ImplProfile::kDaemon:
      return "daemon";
    case ImplProfile::kSpread:
      return "spread";
  }
  return "?";
}

/// Per-profile cost model (virtual CPU / latency constants). The values are
/// calibrated so the three profiles land near the paper's measured maximum
/// throughputs on the simulated 10-gigabit fabric; see DESIGN.md §1.
struct NodeSetup {
  simnet::ProcessCosts proc_costs;
  transport::HostCosts host_costs;
  uint16_t header_pad = 0;        ///< extra wire bytes per data message
  Nanos client_inject_cost = 0;   ///< daemon CPU to read one client message
  Nanos client_deliver_cost = 0;  ///< daemon CPU to write one delivery
  double ipc_per_byte = 0;        ///< ns/byte for the IPC copy each way
  Nanos group_routing_cost = 0;   ///< Spread group-name analysis per delivery
  Nanos ipc_latency = 0;          ///< one-way client<->daemon latency

  [[nodiscard]] static NodeSetup for_profile(ImplProfile profile);
};

/// One simulated node: process, host adapter, engine, flight recorder.
struct SimNode {
  std::unique_ptr<simnet::Process> process;
  std::unique_ptr<transport::SimHost> host;
  std::unique_ptr<protocol::Engine> engine;
  std::unique_ptr<util::Tracer> tracer;
  /// Present only after SimCluster::enable_metrics() (null otherwise).
  std::unique_ptr<obs::MetricsRegistry> metrics;
  uint64_t delivered = 0;  ///< application-level deliveries at this node
};

/// Everything tests, benches, and the multi-ring assembly want to know about
/// a cluster after (or during) a run, in one struct instead of a scatter of
/// per-node getters.
struct ClusterStats {
  struct NodeStats {
    protocol::EngineStats engine;
    uint64_t delivered = 0;     ///< application deliveries observed
    uint64_t socket_drops = 0;
    Nanos busy_time = 0;        ///< virtual CPU time consumed
    double cpu_utilization = 0; ///< busy_time / elapsed simulated time
  };
  std::vector<NodeStats> nodes;
  simnet::NetworkStats net;
  Nanos now = 0;  ///< simulated time the snapshot was taken

  [[nodiscard]] uint64_t delivered_total() const {
    uint64_t n = 0;
    for (const auto& s : nodes) n += s.delivered;
    return n;
  }
  [[nodiscard]] uint64_t retransmits() const {
    uint64_t n = 0;
    for (const auto& s : nodes) n += s.engine.retransmitted;
    return n;
  }
  [[nodiscard]] uint64_t rtr_requested() const {
    uint64_t n = 0;
    for (const auto& s : nodes) n += s.engine.rtr_requested;
    return n;
  }
  [[nodiscard]] uint64_t token_retransmits() const {
    uint64_t n = 0;
    for (const auto& s : nodes) n += s.engine.token_retransmits;
    return n;
  }
  [[nodiscard]] uint64_t submit_rejected() const {
    uint64_t n = 0;
    for (const auto& s : nodes) n += s.engine.submit_rejected;
    return n;
  }
  [[nodiscard]] uint64_t quarantines() const {
    uint64_t n = 0;
    for (const auto& s : nodes) n += s.engine.quarantines;
    return n;
  }
  [[nodiscard]] uint64_t readmits() const {
    uint64_t n = 0;
    for (const auto& s : nodes) n += s.engine.readmits;
    return n;
  }
  [[nodiscard]] uint64_t socket_drops() const {
    uint64_t n = 0;
    for (const auto& s : nodes) n += s.socket_drops;
    return n;
  }
  [[nodiscard]] double max_cpu_utilization() const {
    double m = 0;
    for (const auto& s : nodes) m = s.cpu_utilization > m ? s.cpu_utilization : m;
    return m;
  }
};

class SimCluster {
 public:
  /// Called on every application-level delivery: receiving node, the
  /// delivery, and the time the receiving *client* sees the message.
  using DeliverFn =
      std::function<void(int node, const protocol::Delivery&, Nanos at)>;
  using ConfigFn =
      std::function<void(int node, const protocol::ConfigurationChange&)>;

  SimCluster(int num_nodes, simnet::FabricParams fabric,
             protocol::ProtocolConfig cfg, ImplProfile profile,
             uint64_t seed = 1);

  /// Multi-datacenter cluster: one node per topology host, wired through the
  /// topology's WAN links, with each host's CPU multiplier applied to its
  /// Process at construction (and re-applied on restart). A single_dc
  /// topology is bit-identical to the num_nodes constructor.
  SimCluster(const simnet::Topology& topo, simnet::FabricParams fabric,
             protocol::ProtocolConfig cfg, ImplProfile profile,
             uint64_t seed = 1);

  /// Multi-ring assembly: share an external event queue so several clusters
  /// (one per ring, each with its own switch fabric) advance on one simulated
  /// clock. The queue must outlive the cluster.
  SimCluster(simnet::EventQueue& eq, int num_nodes,
             simnet::FabricParams fabric, protocol::ProtocolConfig cfg,
             ImplProfile profile, uint64_t seed = 1);

  /// Shared-clock multi-datacenter cluster (multi-ring assembly over a
  /// topology).
  SimCluster(simnet::EventQueue& eq, const simnet::Topology& topo,
             simnet::FabricParams fabric, protocol::ProtocolConfig cfg,
             ImplProfile profile, uint64_t seed = 1);

  /// All nodes start on one pre-agreed ring (the benchmark setup).
  void start_static();
  /// All nodes run the membership algorithm from scratch.
  void start_discovery();

  /// Application-level send from `node` at the current simulation time:
  /// models the full client path of the profile (IPC hop for daemon/Spread,
  /// direct submit for library). Payload is delivered as-is.
  void submit(int node, protocol::Service service,
              std::vector<std::byte> payload);

  void set_on_deliver(DeliverFn fn) { on_deliver_ = std::move(fn); }
  void set_on_config(ConfigFn fn) { on_config_ = std::move(fn); }

  /// Additional observers, invoked *before* the primary callback on every
  /// delivery / configuration change. Unlike set_on_deliver/set_on_config
  /// these accumulate, so a safety oracle can watch a cluster without
  /// stealing the callback a test or the multi-ring merger installed.
  void add_on_deliver(DeliverFn fn) {
    deliver_observers_.push_back(std::move(fn));
  }
  void add_on_config(ConfigFn fn) {
    config_observers_.push_back(std::move(fn));
  }

  /// Fault injection: take `node` down (it neither sends nor receives, and
  /// stays down until restarted). Idempotent.
  void crash_node(int node);

  /// Replace a crashed node with a fresh process/engine at the same index
  /// and start it on the membership algorithm (a cold restart: all ordering
  /// and membership state is lost, as for a real rebooted daemon). The old
  /// node's objects are retired, muted, and kept alive so simulator events
  /// already queued against them resolve harmlessly. Requires crash_node()
  /// first.
  void restart_node(int node);

  /// Restarts performed on `node` so far (0 = still the original engine).
  [[nodiscard]] int restarts(int node) const {
    return restarts_[static_cast<size_t>(node)];
  }

  [[nodiscard]] simnet::EventQueue& eq() { return eq_; }
  [[nodiscard]] simnet::Network& net() { return net_; }
  [[nodiscard]] protocol::Engine& engine(int node) {
    return *nodes_[node].engine;
  }
  [[nodiscard]] simnet::Process& process(int node) {
    return *nodes_[node].process;
  }
  /// The CPU multiplier `node` was constructed with (its topology host
  /// spec; 1.0 for homogeneous clusters). The heal-all path of a fault
  /// campaign resets to this, not to 1.0, so constructed heterogeneity
  /// survives a heal.
  [[nodiscard]] double base_cpu_multiplier(int node) const {
    return net_.topology().hosts[static_cast<size_t>(node)].cpu_multiplier;
  }
  /// Per-node flight recorder (always attached to the node's engine).
  [[nodiscard]] util::Tracer& tracer(int node) { return *nodes_[node].tracer; }

  /// Attach a per-node MetricsRegistry to every engine (and to every future
  /// incarnation created by restart_node). Recording never perturbs the run
  /// (see obs/metrics.hpp); call any time before or during a simulation.
  void enable_metrics();
  [[nodiscard]] bool metrics_enabled() const { return metrics_enabled_; }
  /// Node's registry, or nullptr when metrics are not enabled.
  [[nodiscard]] obs::MetricsRegistry* metrics(int node) {
    return nodes_[node].metrics.get();
  }
  /// Cluster-wide aggregate: every node's registry merged (current and
  /// retired incarnations), plus cluster-level counters mirrored from
  /// stats() — delivery counts, socket drops, and fabric volume.
  [[nodiscard]] obs::MetricsRegistry merged_metrics() const;
  /// Per-node epoch store, backed by the node's SimDisk (the file survives
  /// restart_node, modelling the on-disk epoch file of a real daemon across
  /// a cold restart; the store *object* is recreated per incarnation, like
  /// the daemon's in-memory cache of it).
  [[nodiscard]] membership::EpochStore& epoch_store(int node) {
    return *epoch_stores_[static_cast<size_t>(node)];
  }
  /// Per-node simulated disk. Survives restart_node (a reboot keeps the
  /// disk); crash_node power-cuts it, restart_node resolves the power loss
  /// (un-fsynced state dies per the disk's crash mode) before the fresh
  /// incarnation recovers from whatever is durable.
  [[nodiscard]] storage::SimDisk& disk(int node) {
    return *disks_[static_cast<size_t>(node)];
  }
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const NodeSetup& setup() const { return setup_; }
  [[nodiscard]] ImplProfile profile() const { return profile_; }

  /// Snapshot of every per-node and fabric counter in one struct.
  [[nodiscard]] ClusterStats stats() const;

  /// Run the simulation until `deadline` (absolute simulated time).
  void run_until(Nanos deadline) { eq_.run_until(deadline); }

  /// Payload bytes of a data message on the wire for this cluster's profile
  /// and a given application payload size (for utilization accounting).
  [[nodiscard]] size_t datagram_size(size_t payload) const;

 private:
  void init(int num_nodes);
  void wire_node(int i);
  void attach_metrics(int i);

  /// Set only when this cluster owns its clock (single-ring constructor);
  /// eq_ references either *owned_eq_ or the caller's shared queue.
  std::unique_ptr<simnet::EventQueue> owned_eq_;
  simnet::EventQueue& eq_;
  simnet::FabricParams fabric_;
  protocol::ProtocolConfig cfg_;
  ImplProfile profile_;
  NodeSetup setup_;
  uint64_t seed_;
  simnet::Network net_;
  std::vector<SimNode> nodes_;
  /// Crashed-and-replaced nodes, kept alive for pointer stability (pending
  /// simulator events may still reference their process/host/engine).
  std::vector<SimNode> retired_;
  std::vector<int> restarts_;
  bool metrics_enabled_ = false;
  /// One per node index; deliberately NOT reset by restart_node (it is the
  /// node's disk, and a cold restart keeps the disk).
  std::vector<std::unique_ptr<storage::SimDisk>> disks_;
  /// One per node index, over the node's disk; recreated by wire_node per
  /// incarnation (fresh daemon memory over the surviving disk).
  std::vector<std::unique_ptr<storage::DiskEpochStore>> epoch_stores_;
  /// Epoch stores of retired incarnations, kept alive for pointer stability
  /// (the retired engine holds a raw pointer to its store).
  std::vector<std::unique_ptr<storage::DiskEpochStore>> retired_epoch_stores_;
  DeliverFn on_deliver_;
  ConfigFn on_config_;
  std::vector<DeliverFn> deliver_observers_;
  std::vector<ConfigFn> config_observers_;
};

}  // namespace accelring::harness
