#include "harness/workload.hpp"

#include <cassert>

#include "util/bytes.hpp"

namespace accelring::harness {

std::vector<std::byte> make_payload(size_t size, const PayloadStamp& stamp) {
  assert(size >= PayloadStamp::kSize);
  util::Writer w(size);
  w.i64(stamp.inject_time);
  w.u32(stamp.sender);
  w.u32(stamp.index);
  std::vector<std::byte> out = std::move(w).take();
  out.resize(size);  // zero fill
  return out;
}

bool parse_payload(std::span<const std::byte> payload, PayloadStamp& stamp) {
  if (payload.size() < PayloadStamp::kSize) return false;
  util::Reader r(payload);
  stamp.inject_time = r.i64();
  stamp.sender = r.u32();
  stamp.index = r.u32();
  return r.ok();
}

RateInjector::RateInjector(SimCluster& cluster, Options options)
    : cluster_(cluster), opt_(options) {
  const double msgs_per_sec = opt_.aggregate_mbps * 1e6 / 8.0 /
                              static_cast<double>(opt_.payload_size);
  const double per_node = msgs_per_sec / cluster_.size();
  interval_ = per_node > 0 ? static_cast<Nanos>(1e9 / per_node)
                           : util::sec(3600);
}

void RateInjector::arm() {
  for (int node = 0; node < cluster_.size(); ++node) {
    // Phase-shift nodes across one interval so injections interleave.
    const Nanos phase = interval_ * node / cluster_.size();
    schedule_next(node, opt_.start + phase, 0);
  }
}

void RateInjector::schedule_next(int node, Nanos at, uint32_t index) {
  if (at >= opt_.stop) return;
  cluster_.eq().schedule(at, [this, node, at, index] {
    PayloadStamp stamp;
    stamp.inject_time = at;
    stamp.sender = static_cast<uint32_t>(node);
    stamp.index = index;
    cluster_.submit(node, opt_.service,
                    make_payload(opt_.payload_size, stamp));
    ++injected_;
    schedule_next(node, at + interval_, index + 1);
  });
}

}  // namespace accelring::harness
