#include "harness/sweep.hpp"

#include <algorithm>
#include <cstdio>

namespace accelring::harness {

PointResult run_point(const PointConfig& config) {
  const simnet::Topology topo = config.topology.hosts.empty()
                                    ? simnet::Topology::single_dc(config.nodes)
                                    : config.topology;
  SimCluster cluster(topo, config.fabric, config.proto, config.profile,
                     config.seed);
  const int nodes = cluster.size();
  // Always-on: recording is free of perturbation (obs_determinism_test pins
  // this), and every bench point then ships its latency histograms.
  cluster.enable_metrics();
  const Nanos window_start = config.warmup;
  const Nanos window_end = config.warmup + config.measure;
  LatencyRecorder recorder(nodes, window_start, window_end);
  recorder.attach(cluster);

  RateInjector::Options inject;
  inject.service = config.service;
  inject.payload_size = config.payload_size;
  inject.aggregate_mbps = config.offered_mbps;
  inject.start = util::usec(100);  // let the ring form first
  inject.stop = window_end;
  RateInjector injector(cluster, inject);

  cluster.start_static();
  injector.arm();
  // Drain time lets in-flight messages deliver (they only count if they
  // arrive inside the window).
  cluster.run_until(window_end + util::msec(50));

  PointResult r;
  r.offered_mbps = config.offered_mbps;
  // All receivers see the same aggregate stream; report the mean across
  // nodes to smooth edge-of-window effects.
  double sum = 0;
  for (int i = 0; i < nodes; ++i) sum += recorder.node_mbps(i);
  r.achieved_mbps = sum / nodes;
  r.mean_latency = recorder.latency().mean();
  r.p50_latency = recorder.latency().percentile(0.5);
  r.p90_latency = recorder.latency().percentile(0.90);
  r.p99_latency = recorder.latency().percentile(0.99);
  r.p999_latency = recorder.latency().percentile(0.999);
  r.max_latency = recorder.latency().max();
  r.messages = recorder.node_messages(0);
  const ClusterStats stats = cluster.stats();
  r.buffer_drops = stats.net.drops_buffer;
  r.socket_drops = stats.socket_drops();
  r.retransmits = stats.retransmits();
  r.rtr_requested = stats.rtr_requested();
  r.token_retransmits = stats.token_retransmits();
  r.submit_rejected = stats.submit_rejected();
  r.max_cpu_utilization = stats.max_cpu_utilization();
  auto merged =
      std::make_shared<obs::MetricsRegistry>(cluster.merged_metrics());
  // Cross-node delivery latency (inject stamp at the sender's client →
  // client receipt anywhere), the number the paper's figures plot. The
  // engine-level origin_* histograms cover only own-node delivery.
  obs::Histogram& dist = merged->histogram("harness", "delivery_latency_ns");
  for (const Nanos sample : recorder.latency().samples()) dist.record(sample);
  r.metrics = std::move(merged);
  return r;
}

Curve run_curve(std::string label, PointConfig base,
                const std::vector<double>& offered_mbps) {
  Curve curve;
  curve.label = std::move(label);
  for (double mbps : offered_mbps) {
    base.offered_mbps = mbps;
    curve.points.push_back(run_point(base));
  }
  return curve;
}

PointResult find_max_throughput(PointConfig base, double start_mbps,
                                double step_mbps, double ceiling_mbps) {
  PointResult best;
  for (double offered = start_mbps; offered <= ceiling_mbps;
       offered += step_mbps) {
    base.offered_mbps = offered;
    const PointResult r = run_point(base);
    if (r.achieved_mbps > best.achieved_mbps) best = r;
    // Saturated: achieved falls well short of offered and is no longer
    // improving, so pushing harder only grows queues.
    if (r.achieved_mbps < 0.85 * offered) break;
  }
  return best;
}

void print_curve(const Curve& curve) {
  std::printf("# %s\n", curve.label.c_str());
  std::printf("%12s %12s %12s %12s %12s %10s %10s %8s\n", "offered_mbps",
              "achieved", "mean_lat_us", "p50_us", "p99_us", "retrans",
              "drops", "cpu%");
  for (const PointResult& p : curve.points) {
    std::printf("%12.0f %12.1f %12.1f %12.1f %12.1f %10llu %10llu %8.1f\n",
                p.offered_mbps, p.achieved_mbps, util::to_usec(p.mean_latency),
                util::to_usec(p.p50_latency), util::to_usec(p.p99_latency),
                static_cast<unsigned long long>(p.retransmits),
                static_cast<unsigned long long>(p.buffer_drops +
                                                p.socket_drops),
                100.0 * p.max_cpu_utilization);
  }
  std::printf("\n");
}

protocol::ProtocolConfig bench_protocol(protocol::Variant v) {
  protocol::ProtocolConfig cfg;
  cfg.variant = v;
  cfg.priority = protocol::PriorityMethod::kAggressive;
  cfg.personal_window = 20;
  cfg.global_window = 160;
  cfg.accelerated_window = 15;
  return cfg;
}

}  // namespace accelring::harness
