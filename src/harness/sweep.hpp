// Experiment driver: run one (protocol, profile, fabric, load) point or a
// whole latency-vs-throughput series, producing the rows behind each figure
// in the paper. Used by every binary under bench/ and by the integration
// tests' smoke checks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "harness/latency.hpp"
#include "harness/workload.hpp"
#include "obs/metrics.hpp"

namespace accelring::harness {

struct PointConfig {
  int nodes = 8;
  /// When non-empty, the cluster is built from this multi-datacenter
  /// topology and `nodes` is ignored (the topology's host count rules).
  simnet::Topology topology;
  simnet::FabricParams fabric = simnet::FabricParams::one_gig();
  protocol::ProtocolConfig proto;
  ImplProfile profile = ImplProfile::kLibrary;
  protocol::Service service = protocol::Service::kAgreed;
  size_t payload_size = 1350;
  double offered_mbps = 100.0;
  Nanos warmup = util::msec(150);
  Nanos measure = util::msec(600);
  uint64_t seed = 1;
};

struct PointResult {
  double offered_mbps = 0;
  double achieved_mbps = 0;  ///< clean payload observed at one receiver
  Nanos mean_latency = 0;
  Nanos p50_latency = 0;
  Nanos p90_latency = 0;
  Nanos p99_latency = 0;
  Nanos p999_latency = 0;
  Nanos max_latency = 0;
  uint64_t messages = 0;        ///< messages measured (one receiver)
  uint64_t buffer_drops = 0;    ///< switch port-buffer tail drops
  uint64_t socket_drops = 0;    ///< host socket-buffer drops
  uint64_t retransmits = 0;     ///< data retransmissions (all nodes)
  uint64_t rtr_requested = 0;   ///< retransmission requests added to tokens
  uint64_t token_retransmits = 0;
  uint64_t submit_rejected = 0; ///< backpressure at the senders
  /// Highest per-node virtual CPU utilization over the run (busy time /
  /// elapsed). The paper stresses that the single-threaded daemon must not
  /// consume more than one core; this is that number.
  double max_cpu_utilization = 0;
  /// Cluster-wide metric registry for the point (engine/membership metrics
  /// merged across nodes, plus the harness's cross-node delivery-latency
  /// histogram under ("harness", "delivery_latency_ns")). Shared so
  /// PointResult stays cheaply copyable through curve/max-search plumbing.
  std::shared_ptr<const obs::MetricsRegistry> metrics;
};

/// Run one point: build a cluster, inject at the offered rate, measure.
[[nodiscard]] PointResult run_point(const PointConfig& config);

/// A labelled latency-vs-throughput curve (one line in a paper figure).
struct Curve {
  std::string label;
  std::vector<PointResult> points;
};

/// Run `base` at each offered load in `offered_mbps`.
[[nodiscard]] Curve run_curve(std::string label, PointConfig base,
                              const std::vector<double>& offered_mbps);

/// Step up the offered load from `start_mbps` by `step_mbps` until achieved
/// throughput stops following offered load (saturation), returning the
/// highest achieved throughput. Used for the headline "maximum throughput"
/// numbers in §IV.
[[nodiscard]] PointResult find_max_throughput(PointConfig base,
                                              double start_mbps,
                                              double step_mbps,
                                              double ceiling_mbps);

/// Print a curve as an aligned table (bench binaries' output format).
void print_curve(const Curve& curve);

/// Convenience: protocol config for a variant with the benchmark windows.
[[nodiscard]] protocol::ProtocolConfig bench_protocol(protocol::Variant v);

}  // namespace accelring::harness
