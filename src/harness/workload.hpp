// Workload generation: fixed-rate senders with self-describing payloads.
//
// Mirrors the paper's benchmark setup (§IV-A): each node runs a sending
// client injecting messages at a fixed rate; every receiving client receives
// all messages from all senders. Payloads embed the injection timestamp and
// a (sender, index) pair so receivers can measure latency and check
// completeness without side tables.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/cluster.hpp"

namespace accelring::harness {

/// Stamp at the front of every generated payload.
struct PayloadStamp {
  Nanos inject_time = 0;
  uint32_t sender = 0;
  uint32_t index = 0;

  static constexpr size_t kSize = 16;
};

/// Build a payload of exactly `size` bytes (>= PayloadStamp::kSize) carrying
/// the stamp followed by zero fill.
[[nodiscard]] std::vector<std::byte> make_payload(size_t size,
                                                  const PayloadStamp& stamp);

/// Parse the stamp back out; returns false if the payload is too short.
[[nodiscard]] bool parse_payload(std::span<const std::byte> payload,
                                 PayloadStamp& stamp);

/// Injects messages into every cluster node at a fixed aggregate rate from
/// `start` until `stop`. Nodes are phase-shifted so injections do not
/// synchronize.
class RateInjector {
 public:
  struct Options {
    protocol::Service service = protocol::Service::kAgreed;
    size_t payload_size = 1350;
    double aggregate_mbps = 100.0;  ///< clean payload bits/s across all nodes
    Nanos start = 0;
    Nanos stop = util::sec(1);
  };

  RateInjector(SimCluster& cluster, Options options);

  /// Schedule all injections (events are created lazily, one per node chain).
  void arm();

  [[nodiscard]] uint64_t injected() const { return injected_; }
  [[nodiscard]] Nanos interval_per_node() const { return interval_; }

 private:
  void schedule_next(int node, Nanos at, uint32_t index);

  SimCluster& cluster_;
  Options opt_;
  Nanos interval_ = 0;
  uint64_t injected_ = 0;
};

}  // namespace accelring::harness
