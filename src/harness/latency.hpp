// Delivery-side measurement: per-receiver latency and throughput accounting
// over an explicit measurement window, mirroring the paper's methodology
// (§IV-A): latency is the mean time from client injection to client receipt
// across all receivers; throughput counts clean application payload only.
#pragma once

#include <vector>

#include "harness/cluster.hpp"
#include "harness/workload.hpp"
#include "util/stats.hpp"

namespace accelring::harness {

class LatencyRecorder {
 public:
  /// Records deliveries whose receipt time falls in [window_start,
  /// window_end). Install with attach().
  LatencyRecorder(int num_nodes, Nanos window_start, Nanos window_end)
      : window_start_(window_start),
        window_end_(window_end),
        per_node_meter_(num_nodes) {}

  /// Install as the cluster's delivery hook (chains are not supported; the
  /// recorder should be the only consumer in benchmark runs).
  void attach(SimCluster& cluster);

  /// Feed one delivery (also usable directly from custom hooks).
  void record(int node, const protocol::Delivery& delivery, Nanos at);

  [[nodiscard]] const util::LatencyStats& latency() const { return latency_; }
  /// Clean payload throughput observed by `node` over the window.
  [[nodiscard]] double node_mbps(int node) const {
    return per_node_meter_[node].mbps(window_end_ - window_start_);
  }
  [[nodiscard]] uint64_t node_messages(int node) const {
    return per_node_meter_[node].messages();
  }
  [[nodiscard]] uint64_t total_messages() const { return total_messages_; }

 private:
  Nanos window_start_;
  Nanos window_end_;
  util::LatencyStats latency_;
  std::vector<util::Meter> per_node_meter_;
  uint64_t total_messages_ = 0;
};

}  // namespace accelring::harness
