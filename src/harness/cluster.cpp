#include "harness/cluster.hpp"

#include <cassert>

#include "membership/membership.hpp"
#include "util/rng.hpp"

namespace accelring::harness {

NodeSetup NodeSetup::for_profile(ImplProfile profile) {
  NodeSetup s;
  switch (profile) {
    case ImplProfile::kLibrary:
      // Engine embedded in the application: minimal per-message overhead.
      s.header_pad = 0;
      s.client_inject_cost = 0;
      s.client_deliver_cost = 0;
      s.group_routing_cost = 0;
      s.ipc_latency = 0;
      break;
    case ImplProfile::kDaemon:
      // Client <-> daemon IPC on both the send and the delivery path.
      s.header_pad = 16;
      s.client_inject_cost = 700;
      s.client_deliver_cost = 1'000;
      s.ipc_per_byte = 0.11;
      s.group_routing_cost = 0;
      s.ipc_latency = 4'000;
      break;
    case ImplProfile::kSpread:
      // Production system: big headers (group + sender names, routing
      // metadata) and group-name analysis on every delivery.
      s.header_pad = 80;
      s.client_inject_cost = 900;
      s.client_deliver_cost = 1'100;
      s.ipc_per_byte = 0.11;
      s.group_routing_cost = 1'200;
      s.ipc_latency = 4'000;
      break;
  }
  return s;
}

SimCluster::SimCluster(int num_nodes, simnet::FabricParams fabric,
                       protocol::ProtocolConfig cfg, ImplProfile profile,
                       uint64_t seed)
    : SimCluster(simnet::Topology::single_dc(num_nodes), fabric, cfg, profile,
                 seed) {}

SimCluster::SimCluster(const simnet::Topology& topo,
                       simnet::FabricParams fabric,
                       protocol::ProtocolConfig cfg, ImplProfile profile,
                       uint64_t seed)
    : owned_eq_(std::make_unique<simnet::EventQueue>()),
      eq_(*owned_eq_),
      fabric_(fabric),
      cfg_(cfg),
      profile_(profile),
      setup_(NodeSetup::for_profile(profile)),
      seed_(seed),
      net_(eq_, fabric, topo, seed) {
  init(topo.num_hosts());
}

SimCluster::SimCluster(simnet::EventQueue& eq, int num_nodes,
                       simnet::FabricParams fabric,
                       protocol::ProtocolConfig cfg, ImplProfile profile,
                       uint64_t seed)
    : SimCluster(eq, simnet::Topology::single_dc(num_nodes), fabric, cfg,
                 profile, seed) {}

SimCluster::SimCluster(simnet::EventQueue& eq, const simnet::Topology& topo,
                       simnet::FabricParams fabric,
                       protocol::ProtocolConfig cfg, ImplProfile profile,
                       uint64_t seed)
    : eq_(eq),
      fabric_(fabric),
      cfg_(cfg),
      profile_(profile),
      setup_(NodeSetup::for_profile(profile)),
      seed_(seed),
      net_(eq_, fabric, topo, seed) {
  init(topo.num_hosts());
}

void SimCluster::init(int num_nodes) {
  if (profile_ == ImplProfile::kSpread) {
    // Spread 4.4 ships the conservative priority method (paper §III-D).
    cfg_.priority = protocol::PriorityMethod::kConservative;
  }
  // Fragment-count CPU accounting must agree with the fabric's MTU.
  setup_.proc_costs.mtu = fabric_.mtu;
  nodes_.resize(num_nodes);
  restarts_.assign(static_cast<size_t>(num_nodes), 0);
  disks_.clear();
  for (int i = 0; i < num_nodes; ++i) {
    // Each node's disk gets its own deterministic rng stream, derived from
    // the cluster seed; disk randomness (torn-write resolution) never
    // perturbs the network rng.
    uint64_t mix = seed_ * 0x9e3779b97f4a7c15ULL +
                   static_cast<uint64_t>(i) + 0x6469736bULL;  // "disk"
    disks_.push_back(std::make_unique<storage::SimDisk>(util::splitmix64(mix)));
  }
  epoch_stores_.clear();
  epoch_stores_.resize(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) wire_node(i);
}

void SimCluster::wire_node(int i) {
  SimNode& node = nodes_[i];
  // Socket buffers: 4 MB mirrors a tuned SO_RCVBUF for a high-rate daemon.
  node.process = std::make_unique<simnet::Process>(eq_, setup_.proc_costs,
                                                   4 * 1024 * 1024);
  // Heterogeneous topologies: the host's constructed CPU speed, re-applied
  // on every restart incarnation (a reboot does not change the hardware).
  const double cpu_mult =
      net_.topology().hosts[static_cast<size_t>(i)].cpu_multiplier;
  if (cpu_mult != 1.0) node.process->set_cpu_multiplier(cpu_mult);
  node.host = std::make_unique<transport::SimHost>(net_, *node.process, i,
                                                   setup_.host_costs);
  node.engine = std::make_unique<protocol::Engine>(
      static_cast<protocol::ProcessId>(i), cfg_, *node.host);
  node.engine->set_header_pad(setup_.header_pad);
  // Always-on flight recorder (two stores per event); tests may swap in
  // their own via engine(i).set_tracer().
  node.tracer = std::make_unique<util::Tracer>(16384);
  node.engine->set_tracer(node.tracer.get());
  // Fresh epoch-store object per incarnation (daemon memory), over the
  // node's surviving disk (the epoch file). The previous incarnation's
  // store goes to the graveyard: its retired engine still points at it.
  auto& store_slot = epoch_stores_[static_cast<size_t>(i)];
  if (store_slot) retired_epoch_stores_.push_back(std::move(store_slot));
  store_slot = std::make_unique<storage::DiskEpochStore>(
      *disks_[static_cast<size_t>(i)], "epoch");
  node.engine->set_epoch_store(store_slot.get());
  if (metrics_enabled_) attach_metrics(i);
  node.host->bind(*node.engine);
  node.process->set_sink(node.host.get());
  net_.attach(i, [proc = node.process.get()](
                     simnet::SocketId sock, const simnet::Network::Payload& p) {
    proc->enqueue(sock, p);
  });

  node.host->set_deliver([this, i](const protocol::Delivery& delivery) {
    SimNode& n = nodes_[i];
    ++n.delivered;
    // Daemon/Spread: the daemon spends CPU routing and writing the message
    // to the receiving client, which then sees it one IPC hop later.
    n.process->charge(setup_.group_routing_cost + setup_.client_deliver_cost +
                      static_cast<Nanos>(
                          static_cast<double>(delivery.payload.size()) *
                          setup_.ipc_per_byte));
    const Nanos client_sees = n.process->now() + setup_.ipc_latency;
    for (const DeliverFn& fn : deliver_observers_) fn(i, delivery, client_sees);
    if (on_deliver_) on_deliver_(i, delivery, client_sees);
  });
  node.host->set_config([this, i](const protocol::ConfigurationChange& c) {
    for (const ConfigFn& fn : config_observers_) fn(i, c);
    if (on_config_) on_config_(i, c);
  });
}

void SimCluster::attach_metrics(int i) {
  SimNode& node = nodes_[i];
  node.metrics = std::make_unique<obs::MetricsRegistry>();
  node.engine->set_metrics(protocol::EngineMetrics::bind(*node.metrics));
}

void SimCluster::enable_metrics() {
  if (metrics_enabled_) return;
  metrics_enabled_ = true;
  for (int i = 0; i < size(); ++i) attach_metrics(i);
}

obs::MetricsRegistry SimCluster::merged_metrics() const {
  obs::MetricsRegistry merged;
  for (const SimNode& n : retired_) {
    if (n.metrics) merged.merge_from(*n.metrics);
  }
  for (const SimNode& n : nodes_) {
    if (n.metrics) merged.merge_from(*n.metrics);
  }
  // Mirror the cluster-level counters stats() computes, so one registry
  // export carries the full picture.
  const ClusterStats s = stats();
  merged.counter("cluster", "delivered").set(s.delivered_total());
  merged.counter("cluster", "socket_drops").set(s.socket_drops());
  merged.counter("cluster", "submit_rejected").set(s.submit_rejected());
  merged.counter("net", "datagrams_sent").set(s.net.datagrams_sent);
  merged.counter("net", "wire_bytes").set(s.net.wire_bytes);
  obs::Gauge& cpu = merged.gauge("cluster", "max_cpu_microutil");
  cpu.set(static_cast<int64_t>(s.max_cpu_utilization() * 1e6));
  return merged;
}

void SimCluster::crash_node(int node) {
  assert(node >= 0 && node < size());
  net_.set_host_down(node, true);
  // A crash is a power cut: everything un-fsynced on the node's disk dies
  // right now, per the disk's crash mode. The disk itself stays operational
  // (and survives into the next incarnation), matching the pre-storage
  // behavior where the epoch store kept accepting writes from the zombie
  // engine between crash and restart.
  disks_[static_cast<size_t>(node)]->power_loss();
}

void SimCluster::restart_node(int node) {
  assert(node >= 0 && node < size());
  assert(net_.host_down(node));
  // Retire the old incarnation: mute its host (sends, deliveries, timer
  // rearms all become no-ops) and move it to the graveyard so any simulator
  // events still holding pointers to its process/engine stay valid.
  SimNode& old = nodes_[node];
  old.host->set_dead(true);
  retired_.push_back(std::move(old));
  nodes_[node] = SimNode{};
  wire_node(node);
  // Deliveries of previous incarnations stay counted in the retired node;
  // carry the count over so ClusterStats::delivered stays cumulative.
  nodes_[node].delivered = retired_.back().delivered;
  ++restarts_[static_cast<size_t>(node)];
  net_.set_host_down(node, false);
  nodes_[node].process->run_soon(
      [this, node] { nodes_[node].engine->start_discovery(); });
}

void SimCluster::start_static() {
  protocol::RingConfig ring;
  ring.ring_id = membership::make_ring_id(1, 0);
  for (int i = 0; i < size(); ++i) {
    ring.members.push_back(static_cast<protocol::ProcessId>(i));
  }
  // Bring every node up on its own virtual CPU at time zero; the
  // representative (node 0) originates the first token.
  for (int i = size() - 1; i >= 0; --i) {
    nodes_[i].process->run_soon(
        [this, i, ring] { nodes_[i].engine->start_with_ring(ring); });
  }
}

void SimCluster::start_discovery() {
  for (int i = 0; i < size(); ++i) {
    nodes_[i].process->run_soon(
        [this, i] { nodes_[i].engine->start_discovery(); });
  }
}

void SimCluster::submit(int node, protocol::Service service,
                        std::vector<std::byte> payload) {
  assert(node >= 0 && node < size());
  SimNode& n = nodes_[node];
  const Nanos cpu_cost = setup_.client_inject_cost;
  if (profile_ == ImplProfile::kLibrary) {
    // The application and the engine share a process: direct submit.
    n.process->run_soon(
        [engine = n.engine.get(), service, p = std::move(payload)]() mutable {
          engine->submit(service, std::move(p));
        },
        cpu_cost);
    return;
  }
  // Daemon/Spread: the client writes to the IPC socket; the daemon reads it
  // one IPC hop later, paying the read cost on its own CPU.
  eq_.schedule_after(setup_.ipc_latency, [this, node, service, cpu_cost,
                                          p = std::move(payload)]() mutable {
    SimNode& target = nodes_[node];
    target.process->run_soon(
        [engine = target.engine.get(), service, p = std::move(p)]() mutable {
          engine->submit(service, std::move(p));
        },
        cpu_cost);
  });
}

ClusterStats SimCluster::stats() const {
  ClusterStats s;
  s.now = eq_.now();
  s.net = net_.stats();
  s.nodes.reserve(nodes_.size());
  for (const SimNode& n : nodes_) {
    ClusterStats::NodeStats ns;
    ns.engine = n.engine->stats();
    ns.delivered = n.delivered;
    ns.socket_drops = n.process->socket_drops();
    ns.busy_time = n.process->busy_time();
    ns.cpu_utilization = s.now > 0 ? static_cast<double>(ns.busy_time) /
                                         static_cast<double>(s.now)
                                   : 0.0;
    s.nodes.push_back(ns);
  }
  return s;
}

size_t SimCluster::datagram_size(size_t payload) const {
  return protocol::DataMsg::encoded_size(payload, setup_.header_pad);
}

}  // namespace accelring::harness
