#include "harness/latency.hpp"

namespace accelring::harness {

void LatencyRecorder::attach(SimCluster& cluster) {
  cluster.set_on_deliver(
      [this](int node, const protocol::Delivery& delivery, Nanos at) {
        record(node, delivery, at);
      });
}

void LatencyRecorder::record(int node, const protocol::Delivery& delivery,
                             Nanos at) {
  ++total_messages_;
  if (at < window_start_ || at >= window_end_) return;
  PayloadStamp stamp;
  if (!parse_payload(delivery.payload, stamp)) return;
  latency_.add(at - stamp.inject_time);
  per_node_meter_[node].add(delivery.payload.size());
}

}  // namespace accelring::harness
