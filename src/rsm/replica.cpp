#include "rsm/replica.hpp"

#include <algorithm>
#include <cassert>

#include "storage/replica_store.hpp"
#include "util/bytes.hpp"
#include "util/crc32.hpp"

namespace accelring::rsm {

namespace {

// RSM frame types inside ordered payloads.
constexpr uint8_t kCommand = 1;
constexpr uint8_t kXferBegin = 2;     ///< transfer header (counts, CRCs)
constexpr uint8_t kXferChunk = 3;     ///< one checkpoint chunk
constexpr uint8_t kXferCmd = 4;       ///< one retained-log suffix command
constexpr uint8_t kXferAnnounce = 5;  ///< per-member basis announcement

}  // namespace

RsmMetrics RsmMetrics::bind(obs::MetricsRegistry& registry) {
  RsmMetrics m;
  m.proposed = &registry.counter("rsm", "proposed");
  m.applied = &registry.counter("rsm", "applied");
  m.snapshots_sent = &registry.counter("rsm", "snapshots_sent");
  m.snapshots_restored = &registry.counter("rsm", "snapshots_restored");
  m.snapshots_verified = &registry.counter("rsm", "snapshots_verified");
  m.divergence_detected = &registry.counter("rsm", "divergence_detected");
  m.snapshot_bytes = &registry.counter("rsm", "snapshot_bytes");
  m.chunks_sent = &registry.counter("rsm", "chunks_sent");
  m.checkpoints = &registry.counter("rsm", "checkpoints");
  m.suffix_replayed = &registry.counter("rsm", "suffix_replayed");
  return m;
}

Replica::Replica(ProcessId self, StateMachine& machine, SubmitFn submit,
                 bool founder, ReplicaOptions options,
                 storage::ReplicaStore* store)
    : self_(self),
      machine_(machine),
      submit_(std::move(submit)),
      opt_(options),
      store_(store),
      initialized_(founder) {
  if (store_ != nullptr) {
    // Cold restart from disk comes FIRST: checkpoint restore + WAL replay.
    // Peer state transfer remains as the fallback (disk empty or corrupt)
    // and as the reconciliation path when the ring moved past us.
    storage::RecoverResult rec = store_->recover();
    if (rec.has_state) {
      machine_.restore(rec.state);
      position_ = rec.position;
      checkpoint_state_ = std::move(rec.state);
      checkpoint_position_ = rec.position;
      for (const std::vector<std::byte>& cmd : rec.commands) {
        // Applied silently — callers install apply observers after
        // construction, so recovery never re-announces history to clients.
        machine_.apply(cmd);
        ++position_;
        log_.push_back(cmd);
      }
      stats_.recovered_from_disk = 1;
      stats_.recovered_commands = rec.commands.size();
      initialized_ = true;
      return;
    }
  }
  if (founder) {
    // The founding checkpoint: the machine's initial state at position 0.
    checkpoint_state_ = machine_.snapshot();
    checkpoint_position_ = 0;
    // Persisting it makes the store self-sufficient from the first command
    // (append() requires a canonical WAL, which save_checkpoint creates).
    if (store_ != nullptr) {
      (void)store_->save_checkpoint(0, checkpoint_state_);
    }
  }
}

bool Replica::submit(std::span<const std::byte> command) {
  util::Writer w(command.size() + 8);
  w.u8(kCommand);
  w.raw(command);
  ++stats_.proposed;
  if (metrics_.proposed != nullptr) metrics_.proposed->inc();
  return submit_(std::move(w).take());
}

void Replica::persist_command(std::span<const std::byte> command) {
  if (store_ == nullptr) return;
  if (!store_->append(command)) ++stats_.wal_append_failures;
}

void Replica::apply_command(std::span<const std::byte> command) {
  persist_command(command);  // write-ahead: durable before visible
  machine_.apply(command);
  ++position_;
  ++stats_.applied;
  if (metrics_.applied != nullptr) metrics_.applied->inc();
  log_.push_back(util::to_vector(command));
  maybe_checkpoint();
}

void Replica::maybe_checkpoint() {
  if (position_ - checkpoint_position_ >= opt_.checkpoint_interval) {
    take_checkpoint();
  }
}

void Replica::take_checkpoint() {
  checkpoint_state_ = machine_.snapshot();
  checkpoint_position_ = position_;
  stats_.log_truncated += log_.size();
  log_.clear();
  ++stats_.checkpoints;
  if (metrics_.checkpoints != nullptr) metrics_.checkpoints->inc();
  // Durable checkpoint + WAL truncation; also heals a latched-broken WAL
  // (the store refuses appends after one failure so the on-disk log stays
  // an exact prefix — the next checkpoint re-roots durability here).
  if (store_ != nullptr) {
    (void)store_->save_checkpoint(checkpoint_position_, checkpoint_state_);
  }
}

void Replica::send_transfer() {
  const size_t chunk_bytes =
      std::min(std::max<size_t>(opt_.max_chunk_bytes, 1), kMaxTransferChunk);
  const uint32_t xfer_id = next_xfer_id_++;
  const uint32_t chunk_count = static_cast<uint32_t>(
      (checkpoint_state_.size() + chunk_bytes - 1) / chunk_bytes);

  // The shipped state is checkpoint + retained log = our state as of the
  // round's completion point in the stream (we flushed any deferred
  // commands just before sending). Adopters replay only commands ordered
  // after that point.
  util::Writer begin(48);
  begin.u8(kXferBegin);
  begin.u32(xfer_id);
  begin.u64(checkpoint_position_);
  begin.u32(util::crc32(checkpoint_state_));
  begin.u32(chunk_count);
  begin.u32(static_cast<uint32_t>(log_.size()));
  begin.u64(checkpoint_state_.size());
  begin.u32(util::crc32(machine_.snapshot()));
  begin.u64(position_);

  auto ship = [this](util::Writer&& w) {
    const size_t size = w.size();
    assert(size <= kMaxTransferChunk + 64 &&
           "transfer frame exceeds the datagram bound");
    if (!submit_(std::move(w).take())) {
      ++stats_.send_failures;
      return false;
    }
    stats_.snapshot_bytes += size;
    if (metrics_.snapshot_bytes != nullptr) metrics_.snapshot_bytes->inc(size);
    return true;
  };

  if (!ship(std::move(begin))) return;
  ++stats_.snapshots_sent;
  if (metrics_.snapshots_sent != nullptr) metrics_.snapshots_sent->inc();

  for (uint32_t i = 0; i < chunk_count; ++i) {
    const size_t off = static_cast<size_t>(i) * chunk_bytes;
    const size_t len = std::min(chunk_bytes, checkpoint_state_.size() - off);
    util::Writer w(len + 16);
    w.u8(kXferChunk);
    w.u32(xfer_id);
    w.u32(i);
    w.bytes(std::span(checkpoint_state_).subspan(off, len));
    if (!ship(std::move(w))) return;
    ++stats_.chunks_sent;
    if (metrics_.chunks_sent != nullptr) metrics_.chunks_sent->inc();
  }
  uint32_t index = 0;
  for (const std::vector<std::byte>& cmd : log_) {
    util::Writer w(cmd.size() + 16);
    w.u8(kXferCmd);
    w.u32(xfer_id);
    w.u32(index++);
    w.bytes(cmd);
    if (!ship(std::move(w))) return;
  }
}

void Replica::send_announce() {
  util::Writer w(16);
  w.u8(kXferAnnounce);
  w.u8(initialized_ ? 1 : 0);
  w.u64(audit_position_);
  w.u32(audit_crc_);
  if (!submit_(std::move(w).take())) {
    ++stats_.send_failures;
    announce_shed_ = true;
  } else {
    announce_shed_ = false;
  }
}

void Replica::replay_buffered() {
  if (!replay_valid_) return;
  for (size_t i = adopt_replay_from_; i < replay_log_.size(); ++i) {
    persist_command(replay_log_[i]);
    machine_.apply(replay_log_[i]);
    ++position_;
    log_.push_back(replay_log_[i]);
    maybe_checkpoint();
    ++stats_.replayed_buffered;
  }
  replay_log_.clear();
  adopt_replay_from_ = 0;
}

void Replica::flush_deferred() {
  if (!initialized_) return;
  for (const std::vector<std::byte>& cmd : replay_log_) {
    apply_command(cmd);
    ++stats_.deferred_flushed;
  }
  replay_log_.clear();
  adopt_replay_from_ = 0;
}

void Replica::finish_round() {
  round_done_ = true;
  // The authoritative basis: the most advanced initialized announce, ties
  // to the lowest process id. Announces are totally ordered, so every
  // member computes the same winner at the same point in the stream.
  const Announce* best = nullptr;
  ProcessId best_id = protocol::kNoProcess;
  for (const auto& [id, a] : announces_) {
    if (!a.initialized) continue;
    if (best == nullptr || a.position > best->position ||
        (a.position == best->position && id < best_id)) {
      best = &a;
      best_id = id;
    }
  }
  if (best == nullptr) {
    // Nobody holds state (all waiting joiners): nothing to reconcile.
    if (initialized_) {
      flush_deferred();
      recording_ = false;
    }
    return;
  }
  bool anyone_needs = false;
  for (const auto& [id, a] : announces_) {
    if (!a.initialized || a.position != best->position ||
        a.crc != best->crc) {
      anyone_needs = true;
    }
  }
  const bool mine_matches = initialized_ && audit_valid_ &&
                            audit_position_ == best->position &&
                            audit_crc_ == best->crc;
  if (mine_matches) {
    if (best_id != self_) {
      // Cross-checked against another replica's boundary CRC: the
      // continuous consistency audit passed.
      ++stats_.snapshots_verified;
      if (metrics_.snapshots_verified != nullptr) {
        metrics_.snapshots_verified->inc();
      }
    }
    flush_deferred();
    recording_ = false;
    if (best_id == self_ && anyone_needs) send_transfer();
    return;
  }
  if (initialized_ && adoption_disabled_) {
    // The buffer overflowed mid-round and we already went live on our own
    // basis; adopting now would lose the overflowed commands. The next
    // membership change retries with a fresh buffer.
    return;
  }
  if (initialized_ && audit_valid_ && audit_position_ == best->position) {
    // Same length, different content: this replica silently diverged from
    // the authoritative basis. Flag it — the adoption below reconciles.
    ++stats_.divergence_detected;
    if (metrics_.divergence_detected != nullptr) {
      metrics_.divergence_detected->inc();
    }
  }
  // Our basis lost (or we are an uninitialized joiner): keep deferring;
  // the authoritative member's transfer is ordered right behind the round.
  // Adoption replays only commands buffered from this point on — the
  // transfer's state covers everything ordered before it.
  need_transfer_ = true;
  adopt_replay_from_ = replay_log_.size();
}

void Replica::adopt_transfer(ProcessId /*sender*/, Transfer& xfer) {
  replaying_ = true;
  machine_.restore(xfer.state);
  position_ = xfer.base_position;
  checkpoint_state_ = std::move(xfer.state);
  checkpoint_position_ = position_;
  log_.clear();
  // The adopted snapshot replaces our whole lineage on disk too: persist it
  // before the suffix appends so the WAL base matches the new checkpoint.
  if (store_ != nullptr) {
    (void)store_->save_checkpoint(checkpoint_position_, checkpoint_state_);
  }
  for (std::vector<std::byte>& cmd : xfer.suffix) {
    persist_command(cmd);
    machine_.apply(cmd);
    ++position_;
    log_.push_back(std::move(cmd));
    ++stats_.suffix_replayed;
    if (metrics_.suffix_replayed != nullptr) metrics_.suffix_replayed->inc();
  }
  stats_.restore_position = xfer.base_position;
  ++stats_.snapshots_restored;
  if (metrics_.snapshots_restored != nullptr) {
    metrics_.snapshots_restored->inc();
  }
  // Our pre-adoption boundary capture described the abandoned basis.
  audit_valid_ = false;
  // Commands ordered after the round completed, which we buffered while
  // the transfer was in flight, complete the catch-up.
  replay_buffered();
  initialized_ = true;
  recording_ = false;
  need_transfer_ = false;
  replaying_ = false;
}

void Replica::on_transfer_complete(ProcessId sender, Transfer& xfer) {
  const bool sane = !xfer.corrupt &&
                    xfer.state.size() == xfer.total_bytes &&
                    util::crc32(xfer.state) == xfer.state_crc &&
                    xfer.base_position + xfer.suffix.size() ==
                        xfer.boundary_position;
  if (!sane) {
    ++stats_.transfers_corrupt;
    return;
  }
  if (!round_done_ || !need_transfer_ || adoption_disabled_ ||
      !replay_valid_) {
    // Not waiting on state (our basis survived the round, or the buffer
    // overflowed and this transfer can no longer be completed by replay).
    ++stats_.transfers_aborted;
    return;
  }
  adopt_transfer(sender, xfer);
}

void Replica::on_delivery(const protocol::Delivery& delivery) {
  if (delivery.payload.empty()) return;
  if (announce_shed_ && !round_done_) {
    // Our announce was shed by backpressure; peers are stuck waiting for
    // it. Any delivery is a sign the stream is moving again — retry.
    send_announce();
  }
  const std::span<const std::byte> body =
      std::span(delivery.payload).subspan(1);
  switch (static_cast<uint8_t>(delivery.payload[0])) {
    case kCommand: {
      if (recording_) {
        if (replay_log_.size() < opt_.max_replay_log) {
          // Buffered, not applied: every member defers during the announce
          // round; a needer keeps deferring until its transfer lands.
          replay_log_.push_back(util::to_vector(body));
        } else if (initialized_) {
          // Overflow mid-deferral: adopting later would lose commands, so
          // give up on adoption and go live on our own basis. The announce
          // round itself keeps running (announces are tiny) — we just no
          // longer act on its outcome until the next configuration.
          flush_deferred();
          recording_ = false;
          adoption_disabled_ = true;
          need_transfer_ = false;
          apply_command(body);
        } else {
          // Overflow: commands beyond the buffer cannot be replayed across
          // a restore; an uninitialized replica loses them outright.
          replay_valid_ = false;
          ++stats_.dropped_uninitialized;
        }
        break;
      }
      if (initialized_) apply_command(body);
      break;
    }
    case kXferBegin: {
      util::Reader r(body);
      Transfer x;
      x.xfer_id = r.u32();
      x.base_position = r.u64();
      x.state_crc = r.u32();
      x.chunk_count = r.u32();
      x.suffix_count = r.u32();
      x.total_bytes = r.u64();
      x.boundary_crc = r.u32();
      x.boundary_position = r.u64();
      if (!r.done()) return;
      x.state.reserve(x.total_bytes);
      if (xfers_.contains(delivery.sender)) ++stats_.transfers_aborted;
      auto [it, _] = xfers_.insert_or_assign(delivery.sender, std::move(x));
      if (it->second.chunk_count == 0 && it->second.suffix_count == 0) {
        Transfer done = std::move(it->second);
        xfers_.erase(it);
        on_transfer_complete(delivery.sender, done);
      }
      break;
    }
    case kXferChunk:
    case kXferCmd: {
      const auto it = xfers_.find(delivery.sender);
      if (it == xfers_.end()) return;  // header lost to a config change
      Transfer& x = it->second;
      util::Reader r(body);
      const uint32_t xfer_id = r.u32();
      const uint32_t index = r.u32();
      const auto data = r.bytes();
      if (!r.done() || xfer_id != x.xfer_id) return;
      const bool is_chunk =
          static_cast<uint8_t>(delivery.payload[0]) == kXferChunk;
      if (is_chunk) {
        // A sender's frames are FIFO in the total order, so chunks arrive
        // exactly in index order; anything else is a torn transfer.
        if (index != x.chunks_seen || x.chunks_seen >= x.chunk_count) {
          x.corrupt = true;
        } else {
          x.state.insert(x.state.end(), data.begin(), data.end());
          ++x.chunks_seen;
        }
      } else {
        if (index != x.suffix.size() || x.suffix.size() >= x.suffix_count) {
          x.corrupt = true;
        } else {
          x.suffix.push_back(util::to_vector(data));
        }
      }
      if (x.chunks_seen == x.chunk_count &&
          x.suffix.size() == x.suffix_count) {
        Transfer done = std::move(x);
        xfers_.erase(it);
        on_transfer_complete(delivery.sender, done);
      }
      break;
    }
    case kXferAnnounce: {
      util::Reader r(body);
      Announce a;
      a.initialized = r.u8() != 0;
      a.position = r.u64();
      a.crc = r.u32();
      if (!r.done()) return;
      if (round_done_) break;  // stale frame from a member's shed retry
      announces_[delivery.sender] = a;
      unresolved_.erase(delivery.sender);
      if (unresolved_.empty()) finish_round();
      break;
    }
    default:
      break;  // unrelated traffic sharing the ordered stream
  }
}

void Replica::on_configuration(const protocol::ConfigurationChange& change) {
  if (change.transitional) return;
  std::set<ProcessId> next(change.config.members.begin(),
                           change.config.members.end());

  // An unfinished incoming transfer means its sender left: EVS delivers a
  // sender's frames inside one configuration, so nothing more will arrive.
  stats_.transfers_aborted += xfers_.size();
  xfers_.clear();

  // A cut announce round (or a cut transfer we were waiting on) restarts
  // from scratch here.
  announces_.clear();
  unresolved_.clear();
  round_done_ = false;
  need_transfer_ = false;
  adoption_disabled_ = false;
  announce_shed_ = false;

  // Boundary capture: the basis this member will announce. Every member
  // captures at the same total-order point (this configuration change), so
  // equal states produce equal (position, CRC) pairs.
  audit_valid_ = initialized_;
  if (initialized_) {
    audit_crc_ = util::crc32(machine_.snapshot());
    audit_position_ = position_;
  }

  // An initialized member that was still deferring keeps its buffer: the
  // cut round resolved nothing, and those commands remain pending the
  // adoption question the new round re-asks. A joiner starts fresh — its
  // buffer only ever complements a transfer, and any in-flight transfer
  // just died with the configuration.
  if (!initialized_) {
    replay_log_.clear();
    replay_valid_ = true;
  }
  adopt_replay_from_ = replay_log_.size();

  if (next.size() <= 1) {
    // Alone: nobody to reconcile with. Run live; a joiner keeps buffering
    // (its state can only arrive in some later, larger configuration).
    round_done_ = true;
    if (initialized_) {
      flush_deferred();
      recording_ = false;
    } else {
      recording_ = true;
    }
    members_ = std::move(next);
    return;
  }

  // Announce round: every member announces its basis through the ordered
  // stream and defers commands until all announces (ours included) arrive.
  // Completion is a fixed point in the total order, so every member
  // resolves the same authoritative basis against the same command prefix.
  unresolved_ = next;
  recording_ = true;
  send_announce();
  members_ = std::move(next);
}

}  // namespace accelring::rsm
