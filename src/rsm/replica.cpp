#include "rsm/replica.hpp"

#include <algorithm>

#include "util/bytes.hpp"
#include "util/crc32.hpp"

namespace accelring::rsm {

namespace {

// RSM frame types inside ordered payloads.
constexpr uint8_t kCommand = 1;
constexpr uint8_t kSnapshot = 2;

}  // namespace

Replica::Replica(ProcessId self, StateMachine& machine, SubmitFn submit,
                 bool founder)
    : self_(self),
      machine_(machine),
      submit_(std::move(submit)),
      initialized_(founder) {
  side_floor_ = founder ? self : protocol::kNoProcess;
}

bool Replica::submit(std::span<const std::byte> command) {
  util::Writer w(command.size() + 8);
  w.u8(kCommand);
  w.raw(command);
  ++stats_.proposed;
  return submit_(std::move(w).take());
}

void Replica::send_snapshot() {
  const std::vector<std::byte> state = machine_.snapshot();
  util::Writer w(state.size() + 16);
  w.u8(kSnapshot);
  w.u32(util::crc32(state));
  w.bytes(state);
  ++stats_.snapshots_sent;
  submit_(std::move(w).take());
}

void Replica::on_delivery(const protocol::Delivery& delivery) {
  if (delivery.payload.empty()) return;
  switch (static_cast<uint8_t>(delivery.payload[0])) {
    case kCommand: {
      if (!initialized_) {
        // Before our restore point in the total order: the snapshot that
        // initializes us already covers this command's effect.
        ++stats_.dropped_uninitialized;
        return;
      }
      machine_.apply(std::span(delivery.payload).subspan(1));
      ++stats_.applied;
      break;
    }
    case kSnapshot: {
      util::Reader r(std::span(delivery.payload).subspan(1));
      const uint32_t crc = r.u32();
      const auto state = r.bytes();
      if (!r.done()) return;
      const ProcessId sender = delivery.sender;
      if (!initialized_) {
        // Joiner: restore from the first snapshot and inherit its side.
        machine_.restore(state);
        initialized_ = true;
        side_floor_ = std::min(side_floor_, sender);
        ++stats_.snapshots_restored;
        return;
      }
      if (sender >= side_floor_ || same_side_.contains(sender)) {
        // A snapshot from our own side of the last membership change: a
        // continuous consistency audit — states must match exactly.
        const std::vector<std::byte> mine = machine_.snapshot();
        if (util::crc32(mine) == crc) {
          ++stats_.snapshots_verified;
        } else if (sender >= side_floor_ && !same_side_.contains(sender)) {
          // Divergent state from a higher-id merged-in side: ignore (their
          // replicas will adopt ours / the lowest side's).
        } else {
          ++stats_.divergence_detected;
        }
        return;
      }
      // Snapshot from a lower-id side we just merged with: EVS allowed our
      // partitions to diverge; the lowest side's state wins. Adopt it.
      machine_.restore(state);
      side_floor_ = sender;
      ++stats_.snapshots_restored;
      break;
    }
    default:
      break;  // unrelated traffic sharing the ordered stream
  }
}

void Replica::on_configuration(const protocol::ConfigurationChange& change) {
  if (change.transitional) return;
  std::set<ProcessId> next(change.config.members.begin(),
                           change.config.members.end());

  // Newcomers = members of the new configuration not in our previous one.
  bool newcomers = false;
  for (ProcessId p : next) {
    if (!members_.contains(p) && p != self_) newcomers = true;
  }
  // Veterans from *our* side = new members that were with us before.
  same_side_.clear();
  ProcessId lowest_veteran = self_;
  for (ProcessId p : next) {
    if (p == self_ || members_.contains(p)) {
      same_side_.insert(p);
      lowest_veteran = std::min(lowest_veteran, p);
    }
  }
  if (newcomers && initialized_ && lowest_veteran == self_ &&
      !members_.empty()) {
    // We are the lowest-id initialized veteran of our side: ship the state.
    // Each merging side does the same; the lowest side's snapshot wins.
    send_snapshot();
  }
  members_ = std::move(next);
}

}  // namespace accelring::rsm
