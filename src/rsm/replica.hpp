// Replicated state machines over totally ordered multicast.
//
// The canonical application the paper's introduction motivates: every
// replica applies the same totally ordered stream of commands to a
// deterministic state machine, so all replicas hold identical state. This
// module packages the pattern as a small library on top of the ordering
// engine:
//
//  * Replica::submit(command) — propose a command; it is applied at every
//    replica at the same position in the total order.
//  * StateMachine — user-implemented apply/snapshot/restore.
//  * State transfer — when a membership change brings in processes that
//    were not in the previous configuration, the lowest-id veteran
//    multicasts a snapshot *through the ordered stream*; joiners restore
//    from it and apply everything ordered after it. Because the snapshot
//    occupies a position in the total order, every replica agrees exactly
//    which commands it covers.
//  * Divergence detection — snapshots carry a CRC of the veteran's state;
//    initialized replicas compare (a cheap continuous consistency audit).
//
// Replica is transport-agnostic, like daemon::Daemon: deliveries and
// configuration changes are fed in, proposals go out through a submit
// callback, so it runs over the simulator or real UDP unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "protocol/types.hpp"

namespace accelring::rsm {

using protocol::ProcessId;

/// Deterministic state machine; implemented by the application. apply()
/// must depend only on current state and the command bytes.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual void apply(std::span<const std::byte> command) = 0;
  [[nodiscard]] virtual std::vector<std::byte> snapshot() const = 0;
  virtual void restore(std::span<const std::byte> snapshot) = 0;
};

struct ReplicaStats {
  uint64_t proposed = 0;
  uint64_t applied = 0;
  uint64_t dropped_uninitialized = 0;  ///< commands before our restore point
  uint64_t snapshots_sent = 0;
  uint64_t snapshots_restored = 0;
  uint64_t snapshots_verified = 0;     ///< matched our own state's CRC
  uint64_t divergence_detected = 0;    ///< snapshot CRC mismatches (bug!)
};

class Replica {
 public:
  /// Sends one ordered message (the engine/daemon submit path).
  using SubmitFn = std::function<bool(std::vector<std::byte> payload)>;

  /// `founder` replicas start initialized with the state machine's current
  /// (usually empty) state; non-founders wait for a snapshot.
  Replica(ProcessId self, StateMachine& machine, SubmitFn submit,
          bool founder);

  /// Propose a command for replicated execution.
  bool submit(std::span<const std::byte> command);

  /// Feed an ordered delivery from the engine/daemon. Non-RSM payloads are
  /// ignored (the stream can be shared with other traffic).
  void on_delivery(const protocol::Delivery& delivery);

  /// Feed an EVS regular configuration change.
  void on_configuration(const protocol::ConfigurationChange& change);

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] const ReplicaStats& stats() const { return stats_; }

 private:
  void send_snapshot();

  ProcessId self_;
  StateMachine& machine_;
  SubmitFn submit_;
  bool initialized_;
  std::set<ProcessId> members_;    ///< previous regular configuration
  std::set<ProcessId> same_side_;  ///< members that came with us last change
  /// Lowest process id whose state lineage we carry. On a merge the lowest
  /// side's state is authoritative; snapshots from below this floor are
  /// adopted, snapshots from our own side are consistency-audited.
  ProcessId side_floor_ = protocol::kNoProcess;
  ReplicaStats stats_;
};

}  // namespace accelring::rsm
