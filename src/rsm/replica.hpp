// Replicated state machines over totally ordered multicast.
//
// The canonical application the paper's introduction motivates: every
// replica applies the same totally ordered stream of commands to a
// deterministic state machine, so all replicas hold identical state. This
// module packages the pattern as a small library on top of the ordering
// engine:
//
//  * Replica::submit(command) — propose a command; it is applied at every
//    replica at the same position in the total order.
//  * StateMachine — user-implemented apply/snapshot/restore.
//  * Announce round — at every regular membership change, every member
//    posts one small ordered announce frame describing its state basis
//    (initialized flag, position, state CRC) and defers new commands until
//    all announces arrive. Ordered delivery makes the round all-or-nothing
//    across the view, so every member deterministically computes the same
//    authoritative basis: the most advanced initialized announce, ties
//    broken by lowest process id. Members whose basis matches flush their
//    deferred commands and continue; the authoritative member ships a state
//    transfer iff anyone mismatched.
//  * State transfer — the authoritative member streams its state *through
//    the ordered stream* as a bounded-size chunked transfer: its last
//    periodic checkpoint, split into chunks that each fit one datagram,
//    followed by the retained command log (a "snapshot + suffix"). A
//    restarting replica therefore applies a checkpoint plus a short suffix
//    instead of replaying its whole history, and no single ordered message
//    ever exceeds the transport's datagram bound.
//  * Log compaction — replicas checkpoint every `checkpoint_interval`
//    applied commands and truncate the retained log past the checkpoint,
//    so the state shipped on a transfer is bounded by one checkpoint plus
//    at most one interval of commands.
//  * Divergence detection — announces carry each member's state CRC at the
//    membership boundary (a point every member agrees on). A member whose
//    position equals the authoritative basis but whose CRC differs has
//    silently diverged: the audit flags it, and the ensuing transfer
//    reconciles it. Unlike comparing against live state, the boundary
//    comparison cannot race with commands ordered after the boundary.
//  * Deferred applies across the round — until the announce round
//    resolves, a member does not know whether its state will be replaced
//    (a restarted or transiently expelled replica rolled forward onto the
//    view's lineage, a merged partition adopting the most advanced side).
//    Executing new commands against a basis that may be rewritten would
//    surface wrong results, so commands are buffered during the round;
//    matching members flush the buffer unchanged, adopting members replay
//    only the commands ordered after the round completed (everything
//    earlier is inside the adopted state).
//
// Replica is transport-agnostic, like daemon::Daemon: deliveries and
// configuration changes are fed in, proposals go out through a submit
// callback, so it runs over the simulator or real UDP unchanged.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "protocol/types.hpp"

namespace accelring::storage {
class ReplicaStore;
}  // namespace accelring::storage

namespace accelring::rsm {

using protocol::ProcessId;

/// Deterministic state machine; implemented by the application. apply()
/// must depend only on current state and the command bytes.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual void apply(std::span<const std::byte> command) = 0;
  [[nodiscard]] virtual std::vector<std::byte> snapshot() const = 0;
  virtual void restore(std::span<const std::byte> snapshot) = 0;
};

/// Hard ceiling on the payload of one transfer frame. The simulated fabric
/// fragments anything above the MTU and loses the whole datagram if any
/// fragment is lost, and a real UDP transport tops out near 64 KiB — so a
/// transfer chunk must always fit one datagram with room for the protocol's
/// own headers.
inline constexpr size_t kMaxTransferChunk = 56 * 1024;

struct ReplicaOptions {
  /// Target payload size of one state-transfer chunk. Clamped to
  /// kMaxTransferChunk; small chunks also survive fragmentation-prone
  /// fabrics better (one lost fragment drops a whole datagram).
  size_t max_chunk_bytes = 8 * 1024;
  /// Applied commands between periodic checkpoints (the compaction unit):
  /// the retained log never exceeds one interval, so a transfer ships one
  /// checkpoint plus at most this many suffix commands.
  uint64_t checkpoint_interval = 256;
  /// Bound on commands buffered for replay across a state transfer. A
  /// replica that overflows it while uninitialized cannot catch up from
  /// that transfer and waits for the next membership change.
  size_t max_replay_log = 16384;
};

struct ReplicaStats {
  uint64_t proposed = 0;
  uint64_t applied = 0;    ///< commands applied live from the stream
  uint64_t dropped_uninitialized = 0;  ///< replay-buffer overflow drops
  uint64_t snapshots_sent = 0;         ///< state transfers shipped
  uint64_t snapshots_restored = 0;     ///< transfers adopted (restore path)
  uint64_t snapshots_verified = 0;     ///< boundary CRC matched ours
  uint64_t divergence_detected = 0;    ///< boundary CRC mismatches (bug!)
  uint64_t snapshot_bytes = 0;         ///< transfer payload bytes shipped
  uint64_t chunks_sent = 0;            ///< checkpoint chunks shipped
  uint64_t checkpoints = 0;            ///< periodic checkpoints taken
  uint64_t log_truncated = 0;          ///< commands compacted away
  uint64_t suffix_replayed = 0;        ///< transfer suffix commands applied
  uint64_t replayed_buffered = 0;      ///< buffered ring commands re-applied
  uint64_t transfers_aborted = 0;      ///< incomplete at a config change
  uint64_t transfers_corrupt = 0;      ///< malformed / CRC-failed transfers
  uint64_t send_failures = 0;          ///< transfer frames shed by submit
  uint64_t restore_position = 0;       ///< base position of last restore
  uint64_t deferred_flushed = 0;       ///< deferred commands applied as-is
  uint64_t recovered_from_disk = 0;    ///< cold starts served by the store
  uint64_t recovered_commands = 0;     ///< WAL commands replayed at recovery
  uint64_t wal_append_failures = 0;    ///< commands the WAL failed to persist
};

/// Registry bindings mirroring ReplicaStats into an obs::MetricsRegistry
/// (component "rsm"). Recording is plain counter increments — no clocks, no
/// allocation — so binding never perturbs a run (the obs zero-perturbation
/// contract). All pointers null until bind().
struct RsmMetrics {
  obs::Counter* proposed = nullptr;
  obs::Counter* applied = nullptr;
  obs::Counter* snapshots_sent = nullptr;
  obs::Counter* snapshots_restored = nullptr;
  obs::Counter* snapshots_verified = nullptr;
  obs::Counter* divergence_detected = nullptr;
  obs::Counter* snapshot_bytes = nullptr;
  obs::Counter* chunks_sent = nullptr;
  obs::Counter* checkpoints = nullptr;
  obs::Counter* suffix_replayed = nullptr;

  [[nodiscard]] static RsmMetrics bind(obs::MetricsRegistry& registry);
};

class Replica {
 public:
  /// Sends one ordered message (the engine/daemon submit path).
  using SubmitFn = std::function<bool(std::vector<std::byte> payload)>;

  /// `founder` replicas start initialized with the state machine's current
  /// (usually empty) state; non-founders wait for a state transfer.
  ///
  /// With a `store`, the replica is crash-consistent: the constructor first
  /// replays the store's checkpoint + WAL (cold restart from disk — state
  /// transfer from a peer becomes the fallback, not the only path), every
  /// command is WAL-appended before it is applied, and periodic checkpoints
  /// persist through the store and truncate the WAL. The store must outlive
  /// the replica.
  Replica(ProcessId self, StateMachine& machine, SubmitFn submit,
          bool founder, ReplicaOptions options = {},
          storage::ReplicaStore* store = nullptr);

  /// Propose a command for replicated execution.
  bool submit(std::span<const std::byte> command);

  /// Feed an ordered delivery from the engine/daemon. Non-RSM payloads are
  /// ignored (the stream can be shared with other traffic).
  void on_delivery(const protocol::Delivery& delivery);

  /// Feed an EVS configuration change (transitional ones are ignored).
  void on_configuration(const protocol::ConfigurationChange& change);

  /// Mirror stats into registry counters (see RsmMetrics). Safe to call at
  /// any time; replaces any previous binding.
  void set_metrics(const RsmMetrics& metrics) { metrics_ = metrics; }

  [[nodiscard]] bool initialized() const { return initialized_; }
  /// True while this replica's state may not reflect the stream: waiting
  /// for its first transfer, or deferring applies across a possible
  /// adoption. Local fast-path reads (leases) must not serve while true.
  [[nodiscard]] bool catching_up() const {
    return !initialized_ || recording_;
  }
  /// True while this replica is reconstructing state from an adopted
  /// transfer (suffix + buffered replay). Applies fired by the state
  /// machine during this window re-execute history other replicas already
  /// exposed — observers that surface applies to clients should treat them
  /// as catch-up, not fresh events.
  [[nodiscard]] bool in_catchup_replay() const { return replaying_; }
  [[nodiscard]] const ReplicaStats& stats() const { return stats_; }
  /// Commands applied across this replica's state lineage (restores reset
  /// it to the transfer's position, so it is comparable across replicas).
  [[nodiscard]] uint64_t position() const { return position_; }
  [[nodiscard]] uint64_t checkpoint_position() const {
    return checkpoint_position_;
  }
  [[nodiscard]] size_t retained_log_size() const { return log_.size(); }
  [[nodiscard]] const ReplicaOptions& options() const { return opt_; }
  [[nodiscard]] storage::ReplicaStore* store() const { return store_; }

 private:
  /// One in-progress incoming transfer, assembled per sender (a sender's
  /// frames are FIFO within one configuration).
  struct Transfer {
    uint32_t xfer_id = 0;
    uint64_t base_position = 0;    ///< position of the checkpoint
    uint32_t state_crc = 0;        ///< CRC of the checkpoint bytes
    uint32_t chunk_count = 0;
    uint32_t suffix_count = 0;
    uint64_t total_bytes = 0;
    uint32_t boundary_crc = 0;     ///< sender state CRC at the boundary
    uint64_t boundary_position = 0;
    std::vector<std::byte> state;  ///< chunks concatenated so far
    uint32_t chunks_seen = 0;
    std::vector<std::vector<std::byte>> suffix;
    bool corrupt = false;
  };

  /// One member's state basis at the configuration boundary.
  struct Announce {
    bool initialized = false;
    uint64_t position = 0;
    uint32_t crc = 0;
  };

  void apply_command(std::span<const std::byte> command);
  /// WAL-append `command` (write-ahead: called before the state machine
  /// applies it). No-op without a store; failures latch inside the store.
  void persist_command(std::span<const std::byte> command);
  void maybe_checkpoint();
  void take_checkpoint();
  void send_transfer();
  void send_announce();
  void on_transfer_complete(ProcessId sender, Transfer& xfer);
  void adopt_transfer(ProcessId sender, Transfer& xfer);
  /// Re-apply commands buffered after the round completed on top of an
  /// adopted state (everything earlier is inside the adopted state).
  void replay_buffered();
  /// Apply buffered commands unchanged (our basis survived the round).
  void flush_deferred();
  /// All announces arrived: compute the authoritative basis, flush or wait
  /// for (and later adopt) the transfer, ship state if we are it.
  void finish_round();

  ProcessId self_;
  StateMachine& machine_;
  SubmitFn submit_;
  ReplicaOptions opt_;
  storage::ReplicaStore* store_;  ///< durable WAL+checkpoint; may be null
  bool initialized_;
  std::set<ProcessId> members_;  ///< current regular configuration

  /// Lineage position: commands applied since the lineage's empty state.
  uint64_t position_ = 0;
  /// Last periodic checkpoint (compaction point) and the retained log of
  /// commands applied after it.
  std::vector<std::byte> checkpoint_state_;
  uint64_t checkpoint_position_ = 0;
  std::deque<std::vector<std::byte>> log_;

  /// Our basis at the last regular configuration boundary — the values our
  /// announce carried (valid while initialized). A deferring replica's
  /// position_ IS its basis, since buffered commands are unapplied.
  bool audit_valid_ = false;
  uint32_t audit_crc_ = 0;
  uint64_t audit_position_ = 0;

  /// Announce-round state. Deliveries are totally ordered, so the round
  /// completes at the same point in the stream for every member, and all
  /// compute the same authoritative basis.
  std::map<ProcessId, Announce> announces_;
  std::set<ProcessId> unresolved_;  ///< members (incl. self) yet to announce
  bool round_done_ = true;
  /// Our basis lost the round: keep deferring until the authoritative
  /// member's transfer lands, then adopt it.
  bool need_transfer_ = false;
  /// Our announce was shed by backpressure; retry on the next delivery.
  bool announce_shed_ = false;

  /// Commands delivered since the round started, buffered (not applied)
  /// until the round resolves whether our state survives. Kept across a
  /// configuration change that cuts a round short (initialized members
  /// only — for a waiting joiner the next transfer covers them).
  bool recording_ = false;
  bool replay_valid_ = true;
  std::vector<std::vector<std::byte>> replay_log_;
  /// Buffer length when the round completed: an adoption replays only
  /// entries from here on (the transfer's state covers everything before).
  size_t adopt_replay_from_ = 0;
  /// Set when the replay buffer overflowed mid-round: adopting later in
  /// this configuration would lose the overflowed commands, so don't.
  bool adoption_disabled_ = false;
  /// True inside adopt_transfer's replay loops (see in_catchup_replay()).
  bool replaying_ = false;

  std::map<ProcessId, Transfer> xfers_;
  uint32_t next_xfer_id_ = 1;

  ReplicaStats stats_;
  RsmMetrics metrics_;
};

}  // namespace accelring::rsm
