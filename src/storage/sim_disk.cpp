#include "storage/sim_disk.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace accelring::storage {

namespace {
constexpr size_t kFaultLogCap = 512;
}  // namespace

const char* crash_mode_name(CrashMode mode) {
  switch (mode) {
    case CrashMode::kDropAll: return "drop_all";
    case CrashMode::kTorn: return "torn";
    case CrashMode::kReorder: return "reorder";
  }
  return "?";
}

SimDisk::SimDisk(uint64_t seed) : rng_(seed) {}

bool SimDisk::gate(IoStatus* status) {
  ++op_count_;
  if (power_cut_) {
    *status = IoStatus::kIoError;
    return false;
  }
  if (cut_countdown_ >= 0) {
    if (cut_countdown_ == 0) {
      power_cut_ = true;
      cut_countdown_ = -1;
      log("power_cut at_op=" + std::to_string(op_count_));
      *status = IoStatus::kIoError;
      return false;
    }
    --cut_countdown_;
  }
  if (stall_remaining_ > 0) {
    --stall_remaining_;
    *status = IoStatus::kIoError;
    return false;
  }
  return true;
}

SimDisk::Inode* SimDisk::visible(const std::string& name) {
  auto it = ns_.find(name);
  if (it == ns_.end()) return nullptr;
  return inodes_.at(it->second).get();
}

uint64_t SimDisk::visible_bytes() const {
  uint64_t total = 0;
  for (const auto& [name, id] : ns_) total += inodes_.at(id)->data.size();
  return total;
}

void SimDisk::gc() {
  for (auto it = inodes_.begin(); it != inodes_.end();) {
    const int id = it->first;
    bool referenced = false;
    for (const auto& [name, ref] : ns_) {
      if (ref == id) { referenced = true; break; }
    }
    if (!referenced) {
      for (const auto& [name, ref] : durable_ns_) {
        if (ref == id) { referenced = true; break; }
      }
    }
    it = referenced ? std::next(it) : inodes_.erase(it);
  }
}

void SimDisk::log(std::string line) {
  if (fault_log_.size() < kFaultLogCap) fault_log_.push_back(std::move(line));
}

IoStatus SimDisk::read(const std::string& name, std::vector<std::byte>& out) {
  if (power_cut_) return IoStatus::kIoError;
  Inode* inode = visible(name);
  if (inode == nullptr) return IoStatus::kNotFound;
  out = inode->data;
  return IoStatus::kOk;
}

IoStatus SimDisk::write(const std::string& name,
                        std::span<const std::byte> data) {
  IoStatus status = IoStatus::kOk;
  if (!gate(&status)) return status;
  Inode* inode = visible(name);
  const uint64_t old_size = inode != nullptr ? inode->data.size() : 0;
  if (capacity_ != 0 && visible_bytes() - old_size + data.size() > capacity_) {
    return IoStatus::kNoSpace;
  }
  if (inode == nullptr) {
    const int id = next_inode_++;
    inodes_[id] = std::make_unique<Inode>();
    ns_[name] = id;
    inode = inodes_[id].get();
  }
  inode->data.assign(data.begin(), data.end());
  inode->pending.push_back(
      Op{Op::Kind::kSet, 0, {data.begin(), data.end()}});
  return IoStatus::kOk;
}

IoStatus SimDisk::append(const std::string& name,
                         std::span<const std::byte> data) {
  IoStatus status = IoStatus::kOk;
  if (!gate(&status)) return status;
  if (capacity_ != 0 && visible_bytes() + data.size() > capacity_) {
    return IoStatus::kNoSpace;
  }
  Inode* inode = visible(name);
  if (inode == nullptr) {
    const int id = next_inode_++;
    inodes_[id] = std::make_unique<Inode>();
    ns_[name] = id;
    inode = inodes_[id].get();
  }
  inode->data.insert(inode->data.end(), data.begin(), data.end());
  inode->pending.push_back(
      Op{Op::Kind::kAppend, 0, {data.begin(), data.end()}});
  return IoStatus::kOk;
}

IoStatus SimDisk::truncate(const std::string& name, uint64_t size) {
  IoStatus status = IoStatus::kOk;
  if (!gate(&status)) return status;
  Inode* inode = visible(name);
  if (inode == nullptr) return IoStatus::kNotFound;
  if (size >= inode->data.size()) return IoStatus::kOk;
  inode->data.resize(size);
  inode->pending.push_back(Op{Op::Kind::kTrunc, size, {}});
  return IoStatus::kOk;
}

IoStatus SimDisk::fsync(const std::string& name) {
  IoStatus status = IoStatus::kOk;
  if (!gate(&status)) return status;
  Inode* inode = visible(name);
  if (inode == nullptr) return IoStatus::kNotFound;
  if (desync_) return IoStatus::kOk;  // the cache lies: nothing persisted
  inode->durable = inode->data;
  inode->pending.clear();
  return IoStatus::kOk;
}

IoStatus SimDisk::rename(const std::string& from, const std::string& to) {
  IoStatus status = IoStatus::kOk;
  if (!gate(&status)) return status;
  auto it = ns_.find(from);
  if (it == ns_.end()) return IoStatus::kNotFound;
  const int id = it->second;
  ns_.erase(it);
  ns_[to] = id;
  gc();
  return IoStatus::kOk;
}

IoStatus SimDisk::remove(const std::string& name) {
  IoStatus status = IoStatus::kOk;
  if (!gate(&status)) return status;
  auto it = ns_.find(name);
  if (it == ns_.end()) return IoStatus::kNotFound;
  ns_.erase(it);
  gc();
  return IoStatus::kOk;
}

IoStatus SimDisk::fsync_dir() {
  IoStatus status = IoStatus::kOk;
  if (!gate(&status)) return status;
  durable_ns_ = ns_;  // honored even under a lying write cache
  gc();
  return IoStatus::kOk;
}

bool SimDisk::exists(const std::string& name) {
  return ns_.find(name) != ns_.end();
}

uint64_t SimDisk::size(const std::string& name) {
  Inode* inode = visible(name);
  return inode != nullptr ? inode->data.size() : 0;
}

void SimDisk::set_crash_mode(CrashMode mode) {
  crash_mode_ = mode;
  log(std::string("crash_mode ") + crash_mode_name(mode));
}

void SimDisk::set_write_cache_lies(bool lies) {
  if (desync_ == lies) return;
  desync_ = lies;
  log(lies ? "desync on" : "desync off");
}

void SimDisk::set_capacity(uint64_t bytes) {
  capacity_ = bytes;
  log("capacity " + std::to_string(bytes));
}

void SimDisk::stall_ops(int count) {
  stall_remaining_ = count;
  log("stall_ops " + std::to_string(count));
}

void SimDisk::cut_after(int64_t count) {
  cut_countdown_ = count;
  if (count >= 0) log("cut_after " + std::to_string(count));
}

int SimDisk::flip_bits(int count, const std::string& name_prefix) {
  std::vector<Inode*> targets;
  uint64_t total = 0;
  for (const auto& [name, id] : ns_) {
    if (!name_prefix.empty() && name.rfind(name_prefix, 0) != 0) continue;
    Inode* inode = inodes_.at(id).get();
    if (!inode->durable.empty()) {
      targets.push_back(inode);
      total += inode->durable.size();
    }
  }
  if (total == 0) return 0;
  int flipped = 0;
  for (int i = 0; i < count; ++i) {
    uint64_t pos = rng_.below(total);
    for (Inode* inode : targets) {
      if (pos < inode->durable.size()) {
        const auto mask = static_cast<std::byte>(1u << rng_.below(8));
        inode->durable[pos] ^= mask;
        if (pos < inode->data.size()) inode->data[pos] ^= mask;
        ++flipped;
        break;
      }
      pos -= inode->durable.size();
    }
  }
  log("flip_bits count=" + std::to_string(flipped) +
      (name_prefix.empty() ? "" : " prefix=" + name_prefix));
  return flipped;
}

std::vector<std::byte> SimDisk::resolve_crash(const Inode& inode, CrashMode mode,
                                            util::Rng& rng,
                                            std::string* detail) {
  if (inode.pending.empty()) {
    *detail = "clean";
    return inode.durable;
  }
  auto apply = [](std::vector<std::byte>& buf, const Op& op, uint64_t cut) {
    switch (op.kind) {
      case Op::Kind::kSet:
        buf.assign(op.data.begin(), op.data.begin() + static_cast<std::ptrdiff_t>(cut));
        break;
      case Op::Kind::kAppend:
        buf.insert(buf.end(), op.data.begin(), op.data.begin() + static_cast<std::ptrdiff_t>(cut));
        break;
      case Op::Kind::kTrunc:
        if (op.trunc_size < buf.size()) buf.resize(op.trunc_size);
        break;
    }
  };
  std::vector<std::byte> buf = inode.durable;
  switch (mode) {
    case CrashMode::kDropAll:
      *detail = "drop_all pending=" + std::to_string(inode.pending.size());
      return buf;
    case CrashMode::kTorn: {
      const uint64_t survive = rng.below(inode.pending.size() + 1);
      for (uint64_t i = 0; i < survive; ++i) {
        apply(buf, inode.pending[i], inode.pending[i].data.size());
      }
      uint64_t cut = 0;
      if (survive < inode.pending.size()) {
        const Op& op = inode.pending[survive];
        if (op.kind == Op::Kind::kTrunc) {
          if (rng.chance(0.5)) apply(buf, op, 0);
        } else if (!op.data.empty()) {
          cut = rng.below(op.data.size() + 1);
          if (cut > 0) apply(buf, op, cut);
        }
      }
      *detail = "torn survive=" + std::to_string(survive) + "/" +
                std::to_string(inode.pending.size()) +
                " cut=" + std::to_string(cut);
      return buf;
    }
    case CrashMode::kReorder: {
      // Each append survives independently; a dropped append beneath a
      // surviving later one becomes a zero gap. kSet/kTrunc act as applied
      // barriers (they reach the platter before the cache starts lying
      // about ordering of the appends that follow).
      struct Extent {
        uint64_t start = 0;
        bool survived = false;
        const Op* op = nullptr;
      };
      std::vector<Extent> extents;
      // Extents start where the durable content ends: appends only ever
      // extend the file, so a surviving append must never overwrite or
      // truncate bytes an honest fsync already persisted.
      uint64_t end = buf.size();
      size_t total = 0;
      size_t survived = 0;
      for (const Op& op : inode.pending) {
        if (op.kind != Op::Kind::kAppend) {
          apply(buf, op, op.data.size());
          extents.clear();
          end = buf.size();
          continue;
        }
        ++total;
        Extent e;
        e.start = end;
        e.op = &op;
        e.survived = rng.chance(0.5);
        if (e.survived) ++survived;
        end += op.data.size();
        extents.push_back(e);
      }
      uint64_t final_size = buf.size();
      for (const Extent& e : extents) {
        if (e.survived) final_size = e.start + e.op->data.size();
      }
      buf.resize(final_size, std::byte{0});
      for (const Extent& e : extents) {
        if (!e.survived || e.start >= final_size) continue;
        std::copy(e.op->data.begin(), e.op->data.end(), buf.begin() + e.start);
      }
      *detail = "reorder survived=" + std::to_string(survived) + "/" +
                std::to_string(total);
      return buf;
    }
  }
  *detail = "?";
  return buf;
}

void SimDisk::power_loss() {
  ns_ = durable_ns_;
  for (const auto& [name, id] : ns_) {
    Inode* inode = inodes_.at(id).get();
    std::string detail;
    inode->data = resolve_crash(*inode, crash_mode_, rng_, &detail);
    inode->durable = inode->data;
    inode->pending.clear();
    if (detail != "clean") log("power_loss " + name + ": " + detail);
  }
  gc();
  desync_ = false;
  power_cut_ = false;
  cut_countdown_ = -1;
  stall_remaining_ = 0;
  log(std::string("power_loss mode=") + crash_mode_name(crash_mode_));
}

}  // namespace accelring::storage
