#include "storage/epoch_store.hpp"

#include <cstdlib>
#include <utility>

#include "util/log.hpp"

namespace accelring::storage {

namespace {
constexpr const char* kTag = "epoch_store";
}

DiskEpochStore::DiskEpochStore(Disk& disk, std::string name)
    : disk_(disk), name_(std::move(name)) {}

uint64_t DiskEpochStore::load() {
  if (loaded_) return cached_;
  loaded_ = true;
  cached_ = 0;
  std::vector<std::byte> raw;
  if (disk_.read(name_, raw) != IoStatus::kOk) return cached_;  // first boot
  // Strict format check: store() only ever writes digits + '\n'. Anything
  // else — a torn write, bit rot, a stray edit — is treated as ABSENT, not
  // parsed best-effort: a torn "45" left over from "4567\n" would load as a
  // plausible epoch far below the real floor, which is exactly the
  // stale-ring-id hole this store exists to close.
  const size_t n = raw.size();
  bool valid = n >= 2 && n < 32 &&
               static_cast<char>(raw[n - 1]) == '\n';
  for (size_t i = 0; valid && i + 1 < n; ++i) {
    const char c = static_cast<char>(raw[i]);
    valid = c >= '0' && c <= '9';
  }
  if (!valid) {
    ACCELRING_LOG_WARN(kTag,
                       "corrupt epoch blob %s (%zu bytes): treating as "
                       "absent, re-minting from 0",
                       name_.c_str(), n);
    return cached_;
  }
  std::string digits(reinterpret_cast<const char*>(raw.data()), n - 1);
  cached_ = std::strtoull(digits.c_str(), nullptr, 10);
  return cached_;
}

void DiskEpochStore::store(uint64_t epoch) {
  if (epoch <= load()) return;
  cached_ = epoch;
  char buf[32];
  const int len = std::snprintf(buf, sizeof(buf), "%llu\n",
                                static_cast<unsigned long long>(epoch));
  const std::span<const std::byte> data(
      reinterpret_cast<const std::byte*>(buf), static_cast<size_t>(len));
  // tmp → fsync → rename → fsync_dir: a crash leaves the old value or the
  // new one, never a torn blob, and the rename itself is made durable.
  const std::string tmp = name_ + ".tmp";
  if (disk_.write(tmp, data) != IoStatus::kOk ||
      disk_.fsync(tmp) != IoStatus::kOk ||
      disk_.rename(tmp, name_) != IoStatus::kOk ||
      disk_.fsync_dir() != IoStatus::kOk) {
    ACCELRING_LOG_WARN(kTag, "failed to persist epoch %llu to %s",
                       static_cast<unsigned long long>(epoch), name_.c_str());
  }
}

}  // namespace accelring::storage
