// The production Disk: a directory of real files with honest POSIX
// durability — fsync() on data, fsync() of the directory fd for namespace
// barriers (rename alone is not power-loss durable; that was the
// FileEpochStore bug this layer fixes).
#pragma once

#include <string>
#include <vector>

#include "storage/disk.hpp"

namespace accelring::storage {

class FileDisk final : public Disk {
 public:
  // `dir` is created (mkdir -p style for the final component) if absent.
  explicit FileDisk(std::string dir);

  IoStatus read(const std::string& name, std::vector<std::byte>& out) override;
  IoStatus write(const std::string& name,
                 std::span<const std::byte> data) override;
  IoStatus append(const std::string& name,
                  std::span<const std::byte> data) override;
  IoStatus truncate(const std::string& name, uint64_t size) override;
  IoStatus fsync(const std::string& name) override;
  IoStatus rename(const std::string& from, const std::string& to) override;
  IoStatus remove(const std::string& name) override;
  IoStatus fsync_dir() override;
  bool exists(const std::string& name) override;
  uint64_t size(const std::string& name) override;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  [[nodiscard]] std::string path(const std::string& name) const;

  std::string dir_;
};

}  // namespace accelring::storage
