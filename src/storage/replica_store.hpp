// Durable write-ahead log + atomic checkpoint store for rsm::Replica,
// written against the Disk interface so the same code runs on SimDisk
// (campaigns, fuzzing) and FileDisk (real daemons).
//
// On-disk layout, per store prefix `p`:
//   p.ckpt — one atomic blob:  magic | position u64 | state bytes | crc32
//   p.wal  — header (magic | base_position u64 | crc32) followed by
//            records (len u32 | crc32(payload) u32 | payload), one per
//            command applied after `base_position`. Records are never
//            empty: len == 0 (whose matching crc is also 0) is reserved as
//            the end-of-log marker recovery uses to stop at zero-filled
//            holes left by lost writes.
//
// Invariants the write protocol maintains (and recovery re-establishes):
//   * The checkpoint is replaced atomically: tmp → fsync → rename →
//     fsync_dir. A crash leaves either the old or the new checkpoint,
//     never a torn one (a torn blob fails its CRC and counts as absent).
//   * The WAL is reset the same way *after* the checkpoint is durable, so
//     wal.base > ckpt.position never holds on an honest disk.
//   * Every append is fsynced before it is acknowledged; the first append
//     failure latches wal_broken_ so the on-disk WAL stays an exact prefix
//     of the applied command sequence (no appends after a hole). The next
//     successful save_checkpoint() heals the latch.
//
// recover() returns the checkpoint + the valid WAL suffix past it, then
// *normalizes* the on-disk WAL to canonical form (base == checkpoint
// position, records ending exactly at the recovered position) so later
// appends never land after CRC garbage and never get mis-skipped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/disk.hpp"

namespace accelring::storage {

struct RecoverResult {
  bool has_state = false;        // a valid checkpoint was found
  uint64_t position = 0;         // checkpoint position
  std::vector<std::byte> state;  // checkpoint snapshot blob
  std::vector<std::vector<std::byte>> commands;  // valid WAL suffix past it
  // Diagnostics: what recovery had to discard.
  uint64_t dropped_records = 0;  // CRC-invalid / torn WAL tail records
  bool wal_rewritten = false;    // on-disk WAL was normalized
  bool checkpoint_corrupt = false;  // a ckpt file existed but failed checks
};

struct StoreStats {
  uint64_t wal_appends = 0;
  uint64_t wal_append_failures = 0;
  uint64_t checkpoints_saved = 0;
  uint64_t checkpoint_failures = 0;
};

class ReplicaStore {
 public:
  ReplicaStore(Disk& disk, std::string prefix);

  // Reads checkpoint + WAL, normalizes the WAL, returns recovered state.
  // Call once, before any append()/save_checkpoint().
  RecoverResult recover();

  // Appends one command record and fsyncs it. Returns false (and latches
  // the WAL broken) on any IO failure — the caller keeps serving from
  // memory; durability resumes at the next successful checkpoint.
  bool append(std::span<const std::byte> command);

  // Atomically persists (position, state), then resets the WAL to an empty
  // log based at `position`. Returns false if the checkpoint itself could
  // not be made durable (the previous checkpoint+WAL remain in effect).
  bool save_checkpoint(uint64_t position, std::span<const std::byte> state);

  [[nodiscard]] bool wal_broken() const { return wal_broken_; }
  [[nodiscard]] const StoreStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& prefix() const { return prefix_; }

 private:
  [[nodiscard]] std::string ckpt_name() const { return prefix_ + ".ckpt"; }
  [[nodiscard]] std::string wal_name() const { return prefix_ + ".wal"; }
  bool reset_wal(uint64_t base,
                 const std::vector<std::vector<std::byte>>& records);

  Disk& disk_;
  std::string prefix_;
  bool wal_ready_ = false;   // canonical WAL exists on disk
  bool wal_broken_ = false;  // stop appending until the next checkpoint
  StoreStats stats_;
};

}  // namespace accelring::storage
