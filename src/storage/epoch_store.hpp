// membership::EpochStore over the storage::Disk layer.
//
// Same strict format as the original FileEpochStore (ASCII digits + '\n';
// anything else loads as absent — the store only ever raises the epoch
// floor, it must never stop a daemon from booting), but the write path now
// goes through the full durability protocol: tmp → fsync → rename →
// fsync_dir. The directory barrier is the fix this layer exists for —
// rename alone is not power-loss durable.
#pragma once

#include <string>

#include "membership/epoch_store.hpp"
#include "storage/disk.hpp"

namespace accelring::storage {

class DiskEpochStore final : public membership::EpochStore {
 public:
  DiskEpochStore(Disk& disk, std::string name);

  [[nodiscard]] uint64_t load() override;
  void store(uint64_t epoch) override;

 private:
  Disk& disk_;
  std::string name_;
  uint64_t cached_ = 0;
  bool loaded_ = false;
};

}  // namespace accelring::storage
