// The storage abstraction: a tiny named-blob filesystem with explicit
// durability barriers, mirroring simnet's sans-io idiom. Everything above
// this interface (WAL, checkpoints, epoch files) is written once and runs
// unchanged against the deterministic fault-injecting SimDisk in tests and
// against FileDisk (a directory of real files) in production.
//
// Durability contract (what survives a power loss):
//   * write()/append()/truncate() data is NOT durable until fsync(name).
//   * rename()/remove() and file *creation* are NOT durable until
//     fsync_dir() — the namespace has its own barrier, exactly like a
//     POSIX directory fsync.
//   * A crash may tear, drop, or reorder any non-durable suffix; SimDisk
//     exercises every one of those behaviours deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace accelring::storage {

enum class IoStatus : uint8_t {
  kOk = 0,
  kNotFound,
  kNoSpace,
  kIoError,
};

[[nodiscard]] inline const char* io_status_name(IoStatus s) {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kNotFound: return "not_found";
    case IoStatus::kNoSpace: return "no_space";
    case IoStatus::kIoError: return "io_error";
  }
  return "?";
}

class Disk {
 public:
  virtual ~Disk() = default;

  // Reads the whole file into `out` (replacing its contents).
  [[nodiscard]] virtual IoStatus read(const std::string& name,
                                      std::vector<std::byte>& out) = 0;
  // Creates-or-replaces the file with `data`.
  [[nodiscard]] virtual IoStatus write(const std::string& name,
                                       std::span<const std::byte> data) = 0;
  // Appends to the file (creating it if absent).
  [[nodiscard]] virtual IoStatus append(const std::string& name,
                                        std::span<const std::byte> data) = 0;
  // Truncates the file to `size` bytes (no-op if already smaller).
  [[nodiscard]] virtual IoStatus truncate(const std::string& name,
                                          uint64_t size) = 0;
  // Durability barrier for the file's *data*.
  [[nodiscard]] virtual IoStatus fsync(const std::string& name) = 0;
  // Atomically renames `from` over `to` (replacing it).
  [[nodiscard]] virtual IoStatus rename(const std::string& from,
                                        const std::string& to) = 0;
  [[nodiscard]] virtual IoStatus remove(const std::string& name) = 0;
  // Durability barrier for the namespace (creations/renames/removes).
  [[nodiscard]] virtual IoStatus fsync_dir() = 0;

  [[nodiscard]] virtual bool exists(const std::string& name) = 0;
  // Size in bytes, or 0 if absent.
  [[nodiscard]] virtual uint64_t size(const std::string& name) = 0;
};

}  // namespace accelring::storage
