// Deterministic in-memory disk with crash/fault semantics, the storage
// counterpart of simnet: same sans-io philosophy, same own-Rng determinism.
//
// The model is a real inode model: names map to inodes, and *two* maps
// exist — the visible namespace and the durable namespace as of the last
// fsync_dir(). Each inode keeps its last durable content (as of the last
// honored fsync) plus the log of mutating ops since. A power loss reverts
// the namespace to the durable map and replays a crash-mode-dependent
// subset of each surviving inode's op log:
//
//   kDropAll  — pending ops vanish; the file reverts to its durable content.
//   kTorn     — a prefix of the pending ops survives, and the first
//               non-surviving op may have been half-applied (its data cut
//               at a random byte) — the classic torn write.
//   kReorder  — append ops survive *independently* (the drive reordered its
//               cache flushes); a dropped append under a surviving later one
//               leaves a zero-filled gap, i.e. CRC garbage mid-file.
//
// rename-without-fsync_dir is exactly as unsafe here as on a real
// filesystem: the durable namespace still points at the old inode.
//
// Fault injection beyond crashes:
//   * set_write_cache_lies(true) — fsync() on file data becomes a lying
//     no-op (ops stay pending) while fsync_dir() stays honored: a consumer
//     write cache with a volatile buffer behind an honest metadata journal.
//   * flip_bits(count, prefix)   — durable bit rot in matching files.
//   * set_capacity(bytes)        — ENOSPC once visible bytes exceed it.
//   * stall_ops(count)           — the next `count` ops fail with kIoError.
//   * cut_after(count)           — power cut mid-sequence: `count` more ops
//     succeed, then every op fails until power_loss() is called. This is
//     the crash-point fuzzing hook.
//
// Every injected fault appends a line to fault_log() so campaign failure
// artifacts can embed the storage schedule verbatim.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/disk.hpp"
#include "util/rng.hpp"

namespace accelring::storage {

enum class CrashMode : uint8_t { kDropAll = 0, kTorn, kReorder };

[[nodiscard]] const char* crash_mode_name(CrashMode mode);

class SimDisk final : public Disk {
 public:
  explicit SimDisk(uint64_t seed);

  IoStatus read(const std::string& name, std::vector<std::byte>& out) override;
  IoStatus write(const std::string& name,
                 std::span<const std::byte> data) override;
  IoStatus append(const std::string& name,
                  std::span<const std::byte> data) override;
  IoStatus truncate(const std::string& name, uint64_t size) override;
  IoStatus fsync(const std::string& name) override;
  IoStatus rename(const std::string& from, const std::string& to) override;
  IoStatus remove(const std::string& name) override;
  IoStatus fsync_dir() override;
  bool exists(const std::string& name) override;
  uint64_t size(const std::string& name) override;

  // --- fault injection -----------------------------------------------------

  // How un-fsynced suffixes die at the next power loss.
  void set_crash_mode(CrashMode mode);
  // Lying write cache: data fsync() stops persisting (returns kOk anyway);
  // fsync_dir() stays honored. Cleared by power_loss().
  void set_write_cache_lies(bool lies);
  [[nodiscard]] bool write_cache_lies() const { return desync_; }
  // Flips `count` random bits across the durable bytes of files whose name
  // starts with `name_prefix` (all files if empty). Returns bits flipped.
  int flip_bits(int count, const std::string& name_prefix = "");
  // Total visible-byte budget; 0 = unlimited. Ops that would exceed it fail
  // with kNoSpace without side effects.
  void set_capacity(uint64_t bytes);
  // The next `count` ops (mutations and fsyncs) fail with kIoError.
  void stall_ops(int count);
  // Allows `count` more successful ops, then fails everything with kIoError
  // until power_loss(). count < 0 disarms.
  void cut_after(int64_t count);
  [[nodiscard]] bool power_cut() const { return power_cut_; }

  // The moment of truth: applies crash semantics to all pending state,
  // reverts the namespace to its durable snapshot, clears desync/stall/cut.
  void power_loss();

  [[nodiscard]] const std::vector<std::string>& fault_log() const {
    return fault_log_;
  }
  void clear_fault_log() { fault_log_.clear(); }

  // Number of disk ops attempted — fuzzing uses this to enumerate crash
  // points via cut_after().
  [[nodiscard]] uint64_t op_count() const { return op_count_; }

 private:
  struct Op {
    enum class Kind : uint8_t { kSet, kAppend, kTrunc } kind;
    uint64_t trunc_size = 0;    // kTrunc
    std::vector<std::byte> data;  // kSet / kAppend
  };
  struct Inode {
    std::vector<std::byte> durable;  // content as of last honored fsync
    std::vector<std::byte> data;     // visible content
    std::vector<Op> pending;       // mutations since last honored fsync
  };

  // Applies stall/power-cut gates and counts the op. Returns false (with
  // *status set) if a fault consumed this op.
  bool gate(IoStatus* status);
  Inode* visible(const std::string& name);
  [[nodiscard]] uint64_t visible_bytes() const;
  void gc();
  void log(std::string line);
  static std::vector<std::byte> resolve_crash(const Inode& inode, CrashMode mode,
                                            util::Rng& rng,
                                            std::string* detail);

  std::map<int, std::unique_ptr<Inode>> inodes_;
  std::map<std::string, int> ns_;          // visible namespace
  std::map<std::string, int> durable_ns_;  // as of last fsync_dir
  int next_inode_ = 1;
  util::Rng rng_;
  CrashMode crash_mode_ = CrashMode::kDropAll;
  bool desync_ = false;
  bool power_cut_ = false;
  int64_t cut_countdown_ = -1;  // <0 disarmed
  int stall_remaining_ = 0;
  uint64_t capacity_ = 0;  // 0 = unlimited
  uint64_t op_count_ = 0;
  std::vector<std::string> fault_log_;
};

}  // namespace accelring::storage
