#include "storage/file_disk.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <utility>

namespace accelring::storage {

namespace {

IoStatus from_errno(int err) {
  switch (err) {
    case ENOENT: return IoStatus::kNotFound;
    case ENOSPC:
    case EDQUOT: return IoStatus::kNoSpace;
    default: return IoStatus::kIoError;
  }
}

// Writes all of `data` to fd, retrying short writes and EINTR.
bool write_all(int fd, std::span<const std::byte> data, int* err) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      *err = errno;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

FileDisk::FileDisk(std::string dir) : dir_(std::move(dir)) {
  ::mkdir(dir_.c_str(), 0755);  // best effort; ops report failures
}

std::string FileDisk::path(const std::string& name) const {
  return dir_ + "/" + name;
}

IoStatus FileDisk::read(const std::string& name, std::vector<std::byte>& out) {
  const int fd = ::open(path(name).c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return from_errno(errno);
  out.clear();
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return from_errno(err);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return IoStatus::kOk;
}

IoStatus FileDisk::write(const std::string& name,
                         std::span<const std::byte> data) {
  const int fd = ::open(path(name).c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return from_errno(errno);
  int err = 0;
  if (!write_all(fd, data, &err)) {
    ::close(fd);
    return from_errno(err);
  }
  ::close(fd);
  return IoStatus::kOk;
}

IoStatus FileDisk::append(const std::string& name,
                          std::span<const std::byte> data) {
  const int fd = ::open(path(name).c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return from_errno(errno);
  int err = 0;
  if (!write_all(fd, data, &err)) {
    ::close(fd);
    return from_errno(err);
  }
  ::close(fd);
  return IoStatus::kOk;
}

IoStatus FileDisk::truncate(const std::string& name, uint64_t size) {
  struct stat st{};
  if (::stat(path(name).c_str(), &st) != 0) return from_errno(errno);
  if (static_cast<uint64_t>(st.st_size) <= size) return IoStatus::kOk;
  if (::truncate(path(name).c_str(), static_cast<off_t>(size)) != 0) {
    return from_errno(errno);
  }
  return IoStatus::kOk;
}

IoStatus FileDisk::fsync(const std::string& name) {
  const int fd = ::open(path(name).c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return from_errno(errno);
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return from_errno(err);
  }
  ::close(fd);
  return IoStatus::kOk;
}

IoStatus FileDisk::rename(const std::string& from, const std::string& to) {
  if (::rename(path(from).c_str(), path(to).c_str()) != 0) {
    return from_errno(errno);
  }
  return IoStatus::kOk;
}

IoStatus FileDisk::remove(const std::string& name) {
  if (::unlink(path(name).c_str()) != 0) return from_errno(errno);
  return IoStatus::kOk;
}

IoStatus FileDisk::fsync_dir() {
  const int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return from_errno(errno);
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return from_errno(err);
  }
  ::close(fd);
  return IoStatus::kOk;
}

bool FileDisk::exists(const std::string& name) {
  struct stat st{};
  return ::stat(path(name).c_str(), &st) == 0;
}

uint64_t FileDisk::size(const std::string& name) {
  struct stat st{};
  if (::stat(path(name).c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace accelring::storage
