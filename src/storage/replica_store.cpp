#include "storage/replica_store.hpp"

#include <utility>

#include "util/bytes.hpp"
#include "util/crc32.hpp"

namespace accelring::storage {

namespace {

constexpr uint32_t kCkptMagic = 0x41524b43;  // "CKRA"
constexpr uint32_t kWalMagic = 0x41524c57;   // "WLRA"
constexpr size_t kWalHeaderSize = 4 + 8 + 4;
// Sanity bound on a single WAL record; anything larger is treated as a
// torn length field.
constexpr uint32_t kMaxRecord = 64u << 20;

std::vector<std::byte> encode_wal_header(uint64_t base) {
  util::Writer w(kWalHeaderSize);
  w.u32(kWalMagic);
  w.u64(base);
  w.u32(util::crc32(w.view()));
  return std::move(w).take();
}

std::vector<std::byte> encode_record(std::span<const std::byte> payload) {
  util::Writer w(8 + payload.size());
  w.u32(static_cast<uint32_t>(payload.size()));
  w.u32(util::crc32(payload));
  w.raw(payload);
  return std::move(w).take();
}

}  // namespace

ReplicaStore::ReplicaStore(Disk& disk, std::string prefix)
    : disk_(disk), prefix_(std::move(prefix)) {}

RecoverResult ReplicaStore::recover() {
  RecoverResult out;

  // 1. Checkpoint: a valid blob is the root of all recovered state. Torn,
  //    rotten, or missing ⇒ no state (the WAL alone is useless without the
  //    snapshot it is based on).
  std::vector<std::byte> blob;
  if (disk_.read(ckpt_name(), blob) == IoStatus::kOk) {
    bool valid = blob.size() > 8;
    if (valid) {
      const std::span<const std::byte> body(blob.data(), blob.size() - 4);
      util::Reader tail(std::span<const std::byte>(blob).subspan(body.size()));
      valid = tail.u32() == util::crc32(body);
    }
    if (valid) {
      util::Reader r(blob);
      const uint32_t magic = r.u32();
      const uint64_t position = r.u64();
      auto state = r.bytes();
      if (magic == kCkptMagic && r.ok() && r.remaining() == 4) {
        out.has_state = true;
        out.position = position;
        out.state = util::to_vector(state);
      } else {
        valid = false;
      }
    }
    if (!valid) out.checkpoint_corrupt = true;
  }

  // 2. WAL: parse the header, skip records the checkpoint already covers,
  //    collect the CRC-valid suffix, stop at the first invalid record.
  std::vector<std::byte> wal;
  bool wal_valid = false;
  uint64_t base = 0;
  size_t consumed = 0;  // bytes of `wal` that parsed cleanly
  uint64_t records_seen = 0;
  if (out.has_state && disk_.read(wal_name(), wal) == IoStatus::kOk &&
      wal.size() >= kWalHeaderSize) {
    util::Reader r(wal);
    const uint32_t magic = r.u32();
    base = r.u64();
    const uint32_t crc = r.u32();
    const std::span<const std::byte> hdr_body(wal.data(), 12);
    if (magic == kWalMagic && crc == util::crc32(hdr_body) &&
        base <= out.position) {
      wal_valid = true;
      consumed = kWalHeaderSize;
      const uint64_t skip = out.position - base;
      while (wal.size() - consumed >= 8) {
        util::Reader rec(std::span<const std::byte>(wal).subspan(consumed));
        const uint32_t len = rec.u32();
        const uint32_t rec_crc = rec.u32();
        // len == 0 with crc == 0 is exactly what a zero-filled hole looks
        // like (crc32 of an empty span is 0), and real commands are never
        // empty — so a zero-length record terminates the valid prefix.
        // Accepting it would let the scan walk across a hole left by a
        // reordered lost write and resume on intact records beyond it,
        // recovering a long lineage with commands silently missing from the
        // middle.
        if (len == 0 || len > kMaxRecord || rec.remaining() < len) break;
        auto payload = rec.raw(len);
        if (util::crc32(payload) != rec_crc) break;
        ++records_seen;
        if (records_seen > skip) {
          out.commands.push_back(util::to_vector(payload));
        }
        consumed += 8 + len;
      }
    }
  }
  if (!wal.empty() && !wal_valid) out.dropped_records = 1;  // header torn
  if (wal_valid && consumed < wal.size()) ++out.dropped_records;

  // 3. Normalize: after this, the on-disk WAL is canonical — header based
  //    at the checkpoint position, then exactly the surviving commands.
  //    Without this, a later append would land after CRC garbage (lost) or
  //    a stale base would mis-skip live records on the next recovery.
  if (out.has_state) {
    const bool canonical = wal_valid && base == out.position &&
                           consumed == wal.size();
    if (canonical) {
      wal_ready_ = true;
    } else {
      out.wal_rewritten = true;
      wal_ready_ = reset_wal(out.position, out.commands);
      wal_broken_ = !wal_ready_;
    }
  } else {
    // No usable checkpoint: scrap whatever is on disk so a later founding
    // checkpoint starts from a clean slate.
    if (disk_.exists(wal_name())) (void)disk_.remove(wal_name());
    if (disk_.exists(ckpt_name())) (void)disk_.remove(ckpt_name());
    (void)disk_.fsync_dir();
  }
  return out;
}

bool ReplicaStore::append(std::span<const std::byte> command) {
  if (command.empty()) {
    // Zero-length records are indistinguishable from zero-filled holes, so
    // recovery treats them as end-of-log. Refuse to write one rather than
    // silently truncate the lineage on the next restart. (Replica commands
    // are always framed and non-empty; this is a contract backstop.)
    ++stats_.wal_append_failures;
    wal_broken_ = true;
    return false;
  }
  if (wal_broken_ || !wal_ready_) {
    ++stats_.wal_append_failures;
    wal_broken_ = true;
    return false;
  }
  const auto record = encode_record(command);
  if (disk_.append(wal_name(), record) != IoStatus::kOk ||
      disk_.fsync(wal_name()) != IoStatus::kOk) {
    // Latch: the on-disk WAL must stay an exact prefix of the applied
    // sequence, so after one hole we stop appending entirely.
    ++stats_.wal_append_failures;
    wal_broken_ = true;
    return false;
  }
  ++stats_.wal_appends;
  return true;
}

bool ReplicaStore::reset_wal(
    uint64_t base, const std::vector<std::vector<std::byte>>& records) {
  const std::string tmp = wal_name() + ".tmp";
  std::vector<std::byte> blob = encode_wal_header(base);
  for (const auto& rec : records) {
    const auto encoded = encode_record(rec);
    blob.insert(blob.end(), encoded.begin(), encoded.end());
  }
  if (disk_.write(tmp, blob) != IoStatus::kOk) return false;
  if (disk_.fsync(tmp) != IoStatus::kOk) return false;
  if (disk_.rename(tmp, wal_name()) != IoStatus::kOk) return false;
  return disk_.fsync_dir() == IoStatus::kOk;
}

bool ReplicaStore::save_checkpoint(uint64_t position,
                                   std::span<const std::byte> state) {
  // Checkpoint first — only once it is durable may the WAL shrink, so
  // wal.base > ckpt.position never holds on an honest disk.
  util::Writer w(16 + state.size());
  w.u32(kCkptMagic);
  w.u64(position);
  w.bytes(state);
  w.u32(util::crc32(w.view()));
  const auto blob = std::move(w).take();
  const std::string tmp = ckpt_name() + ".tmp";
  const bool ckpt_ok = disk_.write(tmp, blob) == IoStatus::kOk &&
                       disk_.fsync(tmp) == IoStatus::kOk &&
                       disk_.rename(tmp, ckpt_name()) == IoStatus::kOk &&
                       disk_.fsync_dir() == IoStatus::kOk;
  if (!ckpt_ok) {
    ++stats_.checkpoint_failures;
    return false;
  }
  if (!reset_wal(position, {})) {
    // The checkpoint is durable but the fresh WAL is not; appends must not
    // continue into a log whose durable base may predate the checkpoint.
    ++stats_.checkpoint_failures;
    wal_broken_ = true;
    return false;
  }
  wal_ready_ = true;
  wal_broken_ = false;
  ++stats_.checkpoints_saved;
  return true;
}

}  // namespace accelring::storage
