// Minimal leveled logging.
//
// The protocol engine is sans-io and silent by default; logging exists for
// the daemons, examples, and for debugging membership transitions in tests.
// Printf-style formatting keeps call sites compact and avoids iostream
// locale/flag state.
#pragma once

#include <cstdarg>

namespace accelring::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are suppressed. Default: kWarn.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// printf-style logging. `tag` names the subsystem ("membership", "daemon").
void logf(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

#define ACCELRING_LOG_DEBUG(tag, ...) \
  ::accelring::util::logf(::accelring::util::LogLevel::kDebug, tag, __VA_ARGS__)
#define ACCELRING_LOG_INFO(tag, ...) \
  ::accelring::util::logf(::accelring::util::LogLevel::kInfo, tag, __VA_ARGS__)
#define ACCELRING_LOG_WARN(tag, ...) \
  ::accelring::util::logf(::accelring::util::LogLevel::kWarn, tag, __VA_ARGS__)
#define ACCELRING_LOG_ERROR(tag, ...) \
  ::accelring::util::logf(::accelring::util::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace accelring::util
