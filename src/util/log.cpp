#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace accelring::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), tag, msg);
}

}  // namespace accelring::util
