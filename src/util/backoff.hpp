// Jittered exponential backoff for reconnect loops.
//
// Equal-jitter variant: the k-th delay is uniform in [cap_k/2, cap_k] where
// cap_k = min(cap, base * 2^k). Full-jitter (uniform in [0, cap_k]) can
// produce near-zero delays that hammer a daemon the instant it dies;
// equal-jitter keeps at least half the exponential spacing while still
// decorrelating a fleet of clients that all lost the same daemon at the
// same moment (the reconnect-storm scenario in src/check/).
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace accelring::util {

class Backoff {
 public:
  /// `base` is the pre-jitter first delay, `cap` the pre-jitter maximum.
  /// Both must be positive; `seed` decorrelates independent clients.
  Backoff(Nanos base, Nanos cap, uint64_t seed)
      : base_(base), cap_(cap), rng_(seed) {}

  /// Delay to wait before the next attempt, advancing the attempt counter.
  [[nodiscard]] Nanos next() {
    const unsigned shift = std::min(attempts_, 62u);
    Nanos ceiling = cap_;
    // base * 2^shift without overflow: once a single doubling passes the
    // cap, stop shifting.
    if (shift < 62 && base_ <= cap_ >> shift) ceiling = base_ << shift;
    ceiling = std::min(ceiling, cap_);
    ++attempts_;
    const Nanos half = ceiling / 2;
    return half + static_cast<Nanos>(
                      rng_.below(static_cast<uint64_t>(ceiling - half) + 1));
  }

  /// Call after a successful attempt: the next failure starts from `base`.
  void reset() { attempts_ = 0; }

  [[nodiscard]] unsigned attempts() const { return attempts_; }

 private:
  Nanos base_;
  Nanos cap_;
  Rng rng_;
  unsigned attempts_ = 0;
};

}  // namespace accelring::util
