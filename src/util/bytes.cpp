#include "util/bytes.hpp"

#include <cassert>

namespace accelring::util {

void Writer::patch_u32(size_t pos, uint32_t v) {
  assert(pos + 4 <= buf_.size());
  for (size_t i = 0; i < 4; ++i) {
    buf_[pos + i] = std::byte{static_cast<uint8_t>(v >> (8 * i))};
  }
}

}  // namespace accelring::util
