#include "util/crc32.hpp"

#include <array>

namespace accelring::util {
namespace {

constexpr std::array<uint32_t, 256> make_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

uint32_t crc32(std::span<const std::byte> data) {
  uint32_t c = 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = kTable[(c ^ static_cast<uint32_t>(b)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace accelring::util
