// Fixed-width little-endian serialization primitives.
//
// All wire formats in this project (token messages, data messages, membership
// messages, IPC frames) are encoded with Writer and decoded with Reader. The
// codec is deliberately boring: explicit little-endian fixed-width integers,
// length-prefixed byte strings, no varints, no alignment tricks. Decoding is
// fail-soft: a Reader that runs past the end of its buffer sets an error flag
// and returns zeroes, and callers check `ok()` once at the end instead of
// checking every field.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace accelring::util {

/// Append-only buffer for encoding wire messages.
class Writer {
 public:
  Writer() = default;
  /// Reserve capacity up front to avoid reallocation on hot paths.
  explicit Writer(size_t reserve) { buf_.reserve(reserve); }

  void u8(uint8_t v) { buf_.push_back(std::byte{v}); }
  void u16(uint16_t v) { append_le(v); }
  void u32(uint32_t v) { append_le(v); }
  void u64(uint64_t v) { append_le(v); }
  void i64(int64_t v) { append_le(static_cast<uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void bytes(std::span<const std::byte> data) {
    u32(static_cast<uint32_t>(data.size()));
    raw(data);
  }

  /// Length-prefixed (u16) UTF-8 string; used for group and sender names.
  void str(std::string_view s) {
    u16(static_cast<uint16_t>(s.size()));
    raw(std::as_bytes(std::span{s.data(), s.size()}));
  }

  /// Raw bytes with no length prefix.
  void raw(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Overwrite a previously written u32 at `pos` (for back-patching lengths).
  void patch_u32(size_t pos, uint32_t v);

  [[nodiscard]] size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::byte> view() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buf_); }

 private:
  template <typename T>
  void append_le(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(std::byte{static_cast<uint8_t>(v >> (8 * i))});
    }
  }

  std::vector<std::byte> buf_;
};

/// Forward-only decoder over a borrowed byte span.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  uint8_t u8() {
    if (!ensure(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint16_t u16() { return read_le<uint16_t>(); }
  uint32_t u32() { return read_le<uint32_t>(); }
  uint64_t u64() { return read_le<uint64_t>(); }
  int64_t i64() { return static_cast<int64_t>(read_le<uint64_t>()); }
  bool boolean() { return u8() != 0; }

  /// Length-prefixed (u32) byte string; returns a view into the buffer.
  std::span<const std::byte> bytes() {
    const uint32_t n = u32();
    return raw(n);
  }

  /// Length-prefixed (u16) string.
  std::string str() {
    const uint16_t n = u16();
    auto s = raw(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }

  /// Raw view of `n` bytes (empty view + error flag on underrun).
  std::span<const std::byte> raw(size_t n) {
    if (!ensure(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool ok() const { return ok_; }
  /// True when the whole buffer was consumed without underrun.
  [[nodiscard]] bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  bool ensure(size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  template <typename T>
  T read_le() {
    if (!ensure(sizeof(T))) return 0;
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Convenience: copy a span into an owned vector.
[[nodiscard]] inline std::vector<std::byte> to_vector(
    std::span<const std::byte> s) {
  return {s.begin(), s.end()};
}

/// Convenience: view a string as bytes (for test payloads).
[[nodiscard]] inline std::span<const std::byte> as_bytes(std::string_view s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

}  // namespace accelring::util
