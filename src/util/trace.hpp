// Protocol flight recorder.
//
// A fixed-capacity ring buffer of timestamped protocol events, attachable to
// any engine. Cheap enough to leave on in production (two stores per
// event), rich enough for tests to assert *ordering* properties that
// counters cannot express — e.g. that every retransmission precedes the
// token send of its round, or that post-token multicasts really do follow
// the token (the defining behaviour of the Accelerated Ring protocol).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace accelring::util {

enum class TraceEvent : uint8_t {
  kTokenRx = 1,     ///< a=round, b=token seq
  kTokenTx = 2,     ///< a=round, b=token seq
  kDataTxPre = 3,   ///< a=seq (new message sent before the token)
  kDataTxPost = 4,  ///< a=seq (accelerated-window message after the token)
  kRetransTx = 5,   ///< a=seq (retransmission answered)
  kDataRx = 6,      ///< a=seq, b=sender
  kDeliver = 7,     ///< a=seq, b=service
  kRtrAdd = 8,       ///< a=seq requested for retransmission
  kMembership = 9,   ///< a=ring id low bits, b=members
  kMergeDeliver = 10,  ///< multi-ring merge output: a=ring id, b=seq
  kSkipMsg = 11,       ///< multi-ring skip consumed: a=ring id, b=seq
  kGatherEnter = 12,   ///< membership gather started: a=candidates, b=gathers
  kViewChange = 13,    ///< EVS config delivered: a=ring id low bits,
                       ///< b=members (negative when transitional)
  kQuarantine = 14,    ///< gray-failure eviction initiated: a=victim pid,
                       ///< b=hold (probe rotations before probation)
  kProbation = 15,     ///< quarantined member entered probation: a=pid
  kReadmit = 16,       ///< probation completed, member re-admitted: a=pid
};

struct TraceRecord {
  Nanos at = 0;
  TraceEvent event = TraceEvent::kTokenRx;
  int64_t a = 0;
  int64_t b = 0;
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 65536) : capacity_(capacity) {
    records_.reserve(capacity);
  }

  void record(Nanos at, TraceEvent event, int64_t a, int64_t b = 0) {
    if (records_.size() < capacity_) {
      records_.push_back(TraceRecord{at, event, a, b});
    } else {
      records_[next_] = TraceRecord{at, event, a, b};
      next_ = (next_ + 1) % capacity_;
      wrapped_ = true;
    }
    ++total_;
  }

  /// Records in chronological order (handles wraparound).
  [[nodiscard]] std::vector<TraceRecord> snapshot() const {
    if (!wrapped_) return records_;
    std::vector<TraceRecord> out;
    out.reserve(capacity_);
    out.insert(out.end(), records_.begin() + static_cast<long>(next_),
               records_.end());
    out.insert(out.end(), records_.begin(),
               records_.begin() + static_cast<long>(next_));
    return out;
  }

  /// Records in chronological order, leaving the buffer empty — the
  /// consume-and-reset accessor incremental consumers (merger tests, the
  /// check oracles) use to assert ordering properties without re-scanning
  /// history. The buffer is detached *before* the records are returned, so
  /// events recorded re-entrantly while a consumer iterates the result (an
  /// oracle that subscribes mid-run and whose processing itself traces) land
  /// in the fresh buffer and survive to the next drain instead of being
  /// destroyed. total_recorded() stays cumulative across drains; only
  /// clear() resets it.
  [[nodiscard]] std::vector<TraceRecord> drain() {
    std::vector<TraceRecord> out;
    out.reserve(capacity_);
    std::swap(out, records_);
    const size_t head = next_;
    const bool wrapped = wrapped_;
    next_ = 0;
    wrapped_ = false;
    if (wrapped) {
      std::rotate(out.begin(), out.begin() + static_cast<long>(head),
                  out.end());
    }
    return out;
  }

  [[nodiscard]] uint64_t total_recorded() const { return total_; }
  [[nodiscard]] uint64_t count(TraceEvent event) const {
    uint64_t n = 0;
    for (const auto& r : records_) n += r.event == event ? 1 : 0;
    return n;
  }
  void clear() {
    records_.clear();
    next_ = 0;
    wrapped_ = false;
    total_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<TraceRecord> records_;
  size_t next_ = 0;
  bool wrapped_ = false;
  uint64_t total_ = 0;
};

}  // namespace accelring::util
