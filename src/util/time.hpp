// Time types shared by the simulator and the real transports.
//
// All protocol and simulator time is an integer nanosecond count (`Nanos`)
// from an arbitrary epoch (simulation start, or process start for the real
// transport). Integer time keeps the simulator deterministic and makes
// latency arithmetic exact.
#pragma once

#include <cstdint>

namespace accelring::util {

/// Nanoseconds since an arbitrary epoch.
using Nanos = int64_t;

inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

constexpr Nanos usec(int64_t n) { return n * kMicrosecond; }
constexpr Nanos msec(int64_t n) { return n * kMillisecond; }
constexpr Nanos sec(int64_t n) { return n * kSecond; }

constexpr double to_usec(Nanos n) { return static_cast<double>(n) / 1e3; }
constexpr double to_msec(Nanos n) { return static_cast<double>(n) / 1e6; }
constexpr double to_sec(Nanos n) { return static_cast<double>(n) / 1e9; }

}  // namespace accelring::util
