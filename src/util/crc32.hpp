// CRC-32 (IEEE 802.3 polynomial, reflected).
//
// The system model assumes messages are not corrupted (§II), but the wire
// codecs still carry a checksum so the real UDP transport can discard
// truncated or mangled datagrams instead of feeding them to the protocol.
#pragma once

#include <cstdint>
#include <span>

namespace accelring::util {

/// CRC-32 of `data` (initial value 0xFFFFFFFF, final xor, reflected poly).
[[nodiscard]] uint32_t crc32(std::span<const std::byte> data);

}  // namespace accelring::util
