// Deterministic pseudo-random number generation.
//
// The simulator must be bit-for-bit reproducible for a given seed, so we carry
// our own small PRNG (xoshiro256**, seeded via splitmix64) instead of relying
// on implementation-defined std::default_random_engine behaviour.
#pragma once

#include <cstdint>

namespace accelring::util {

/// splitmix64 — used to expand a single seed into xoshiro state.
constexpr uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna; fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace accelring::util
