// Statistics collection for the benchmark harness.
//
// LatencyStats records individual sample values (nanoseconds) and reports
// mean / percentiles; Counter and Meter track event counts and byte volumes
// over a measurement window. These are simple exact implementations — the
// benchmark runs are small enough (hundreds of thousands of samples) that we
// do not need sketches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace accelring::util {

/// Collects latency samples and computes summary statistics on demand.
class LatencyStats {
 public:
  void add(Nanos sample);
  void clear();

  [[nodiscard]] size_t count() const { return samples_.size(); }
  [[nodiscard]] Nanos mean() const;
  [[nodiscard]] Nanos min() const;
  [[nodiscard]] Nanos max() const;
  /// q in [0,1]; e.g. 0.5 for median, 0.99 for p99. Sorts lazily.
  [[nodiscard]] Nanos percentile(double q) const;
  [[nodiscard]] Nanos stddev() const;

  /// "mean=312us p50=298us p99=711us n=52344" — for human-readable reports.
  [[nodiscard]] std::string summary() const;

  /// Raw samples (ordering unspecified: percentile() sorts in place).
  [[nodiscard]] const std::vector<Nanos>& samples() const { return samples_; }

 private:
  mutable std::vector<Nanos> samples_;
  mutable bool sorted_ = false;
};

/// Byte/message throughput accounting over an explicit window.
class Meter {
 public:
  void add(uint64_t bytes) {
    ++messages_;
    bytes_ += bytes;
  }
  void clear() {
    messages_ = 0;
    bytes_ = 0;
  }

  [[nodiscard]] uint64_t messages() const { return messages_; }
  [[nodiscard]] uint64_t bytes() const { return bytes_; }
  /// Payload megabits per second over a window of `window` nanoseconds.
  [[nodiscard]] double mbps(Nanos window) const;

 private:
  uint64_t messages_ = 0;
  uint64_t bytes_ = 0;
};

/// Formats nanoseconds as a short human-readable string ("312us", "1.24ms").
[[nodiscard]] std::string format_nanos(Nanos n);

/// Converts a stream of nanosecond deltas into whole-microsecond installments
/// without losing sub-microsecond remainders. Each consume() returns the
/// whole microseconds available after folding in `delta`, carrying the
/// remainder forward, so the cumulative total returned always equals
/// floor(sum_of_deltas / 1000). Rounding each delta independently (as the
/// token hold stamping once did, with ceil) drifts by up to 1us *per call* —
/// at 50k rotations/s that fabricated tens of milliseconds of phantom CPU
/// per second, enough to push a healthy node over the gray-failure
/// threshold. tests/stats_resolution_test.cpp pins the exact totals.
class MicrosAccumulator {
 public:
  [[nodiscard]] uint32_t consume(Nanos delta) {
    carry_ += delta;
    if (carry_ < 1000) return 0;
    const Nanos whole = carry_ / 1000;
    carry_ -= whole * 1000;
    return static_cast<uint32_t>(whole);
  }

  /// Sub-microsecond remainder not yet reported, in [0, 1000).
  [[nodiscard]] Nanos remainder() const { return carry_; }
  void clear() { carry_ = 0; }

 private:
  Nanos carry_ = 0;
};

}  // namespace accelring::util
