// Statistics collection for the benchmark harness.
//
// LatencyStats records individual sample values (nanoseconds) and reports
// mean / percentiles; Counter and Meter track event counts and byte volumes
// over a measurement window. These are simple exact implementations — the
// benchmark runs are small enough (hundreds of thousands of samples) that we
// do not need sketches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace accelring::util {

/// Collects latency samples and computes summary statistics on demand.
class LatencyStats {
 public:
  void add(Nanos sample);
  void clear();

  [[nodiscard]] size_t count() const { return samples_.size(); }
  [[nodiscard]] Nanos mean() const;
  [[nodiscard]] Nanos min() const;
  [[nodiscard]] Nanos max() const;
  /// q in [0,1]; e.g. 0.5 for median, 0.99 for p99. Sorts lazily.
  [[nodiscard]] Nanos percentile(double q) const;
  [[nodiscard]] Nanos stddev() const;

  /// "mean=312us p50=298us p99=711us n=52344" — for human-readable reports.
  [[nodiscard]] std::string summary() const;

 private:
  mutable std::vector<Nanos> samples_;
  mutable bool sorted_ = false;
};

/// Byte/message throughput accounting over an explicit window.
class Meter {
 public:
  void add(uint64_t bytes) {
    ++messages_;
    bytes_ += bytes;
  }
  void clear() {
    messages_ = 0;
    bytes_ = 0;
  }

  [[nodiscard]] uint64_t messages() const { return messages_; }
  [[nodiscard]] uint64_t bytes() const { return bytes_; }
  /// Payload megabits per second over a window of `window` nanoseconds.
  [[nodiscard]] double mbps(Nanos window) const;

 private:
  uint64_t messages_ = 0;
  uint64_t bytes_ = 0;
};

/// Formats nanoseconds as a short human-readable string ("312us", "1.24ms").
[[nodiscard]] std::string format_nanos(Nanos n);

}  // namespace accelring::util
