#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace accelring::util {

void LatencyStats::add(Nanos sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void LatencyStats::clear() {
  samples_.clear();
  sorted_ = false;
}

Nanos LatencyStats::mean() const {
  if (samples_.empty()) return 0;
  long double total = 0;
  for (Nanos s : samples_) total += static_cast<long double>(s);
  return static_cast<Nanos>(total / static_cast<long double>(samples_.size()));
}

Nanos LatencyStats::min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Nanos LatencyStats::max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

Nanos LatencyStats::percentile(double q) const {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double idx = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return static_cast<Nanos>(static_cast<double>(samples_[lo]) * (1.0 - frac) +
                            static_cast<double>(samples_[hi]) * frac);
}

Nanos LatencyStats::stddev() const {
  if (samples_.size() < 2) return 0;
  const long double m = static_cast<long double>(mean());
  long double acc = 0;
  for (Nanos s : samples_) {
    const long double d = static_cast<long double>(s) - m;
    acc += d * d;
  }
  return static_cast<Nanos>(
      std::sqrt(static_cast<double>(acc / static_cast<long double>(samples_.size() - 1))));
}

std::string LatencyStats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "mean=%s p50=%s p99=%s max=%s n=%zu",
                format_nanos(mean()).c_str(),
                format_nanos(percentile(0.5)).c_str(),
                format_nanos(percentile(0.99)).c_str(),
                format_nanos(max()).c_str(), samples_.size());
  return buf;
}

double Meter::mbps(Nanos window) const {
  if (window <= 0) return 0;
  return static_cast<double>(bytes_) * 8.0 / (static_cast<double>(window) / 1e9) /
         1e6;
}

std::string format_nanos(Nanos n) {
  char buf[64];
  if (n < 10 * kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.2fus", to_usec(n));
  } else if (n < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.0fus", to_usec(n));
  } else if (n < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", to_msec(n));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_sec(n));
  }
  return buf;
}

}  // namespace accelring::util
