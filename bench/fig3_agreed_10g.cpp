// Figure 3: Agreed delivery latency vs throughput, 10-gigabit network.
//
// Paper shapes: on 10GbE single-threaded processing, not the wire, is the
// bottleneck, so the three implementations separate clearly — library >
// daemon > Spread in maximum throughput — and the accelerated protocol
// improves both throughput and latency for each (e.g. daemon prototype:
// ~2 Gbps @ ~390us original vs ~2.8 Gbps @ ~265us accelerated in the paper).
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  run_figure("fig3_agreed_10g",
             "Figure 3: Agreed delivery latency vs throughput, 10GbE, 1350B",
             /*ten_gig=*/true, Service::kAgreed, ten_gig_loads());
  return 0;
}
