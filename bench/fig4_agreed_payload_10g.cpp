// Figure 4: Throughput vs Agreed latency for 1350-byte vs 8850-byte
// payloads, 10-gigabit network, accelerated protocol.
//
// Paper shapes: larger UDP datagrams (kernel-level fragmentation, no jumbo
// frames) amortize per-message processing and raise maximum throughput
// substantially — Spread 2.1 -> 5.3 Gbps (+150%), daemon 3.2 -> 6 Gbps
// (+87%), library 4.6 -> 7.3 Gbps (+58%); the gain is largest where
// processing overhead is highest.
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  std::printf(
      "==== Figure 4: Agreed throughput vs latency, 10GbE, 1350B vs 8850B "
      "====\n\n");
  std::vector<accelring::harness::Curve> curves;
  for (ImplProfile profile :
       {ImplProfile::kLibrary, ImplProfile::kDaemon, ImplProfile::kSpread}) {
    for (size_t payload : {size_t{1350}, size_t{8850}}) {
      PointConfig pc = base_point(/*ten_gig=*/true);
      pc.profile = profile;
      pc.proto = accelring::harness::bench_protocol(Variant::kAccelerated);
      pc.service = Service::kAgreed;
      pc.payload_size = payload;
      const auto loads =
          payload > 4000 ? ten_gig_large_loads() : ten_gig_loads();
      curves.push_back(accelring::harness::run_curve(
          curve_label(profile, Variant::kAccelerated, Service::kAgreed,
                      payload),
          pc, loads));
      accelring::harness::print_curve(curves.back());
    }
  }
  emit_bench_artifacts("fig4_agreed_payload_10g", curves);
  return 0;
}
