// Microbenchmarks (google-benchmark): the per-message CPU costs that
// determine the protocol's 10-gigabit behaviour — codec throughput, receive
// buffer operations, flow-control arithmetic, CRC.
#include <benchmark/benchmark.h>

#include "protocol/flow_control.hpp"
#include "protocol/recv_buffer.hpp"
#include "protocol/wire.hpp"
#include "util/crc32.hpp"

namespace {

using namespace accelring;

protocol::DataMsg make_data(size_t payload_size) {
  protocol::DataMsg msg;
  msg.ring_id = 0x10001;
  msg.seq = 123456;
  msg.pid = 3;
  msg.round = 1000;
  msg.service = protocol::Service::kAgreed;
  msg.payload.assign(payload_size, std::byte{0x5A});
  return msg;
}

void BM_EncodeData(benchmark::State& state) {
  const auto msg = make_data(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::encode(msg));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EncodeData)->Arg(64)->Arg(1350)->Arg(8850);

void BM_DecodeData(benchmark::State& state) {
  const auto bytes = protocol::encode(make_data(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::decode_data(bytes));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DecodeData)->Arg(64)->Arg(1350)->Arg(8850);

void BM_EncodeToken(benchmark::State& state) {
  protocol::TokenMsg token;
  token.ring_id = 1;
  token.seq = 1'000'000;
  token.aru = 999'900;
  token.fcc = 120;
  for (int i = 0; i < state.range(0); ++i) token.rtr.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::encode(token));
  }
}
BENCHMARK(BM_EncodeToken)->Arg(0)->Arg(16)->Arg(128);

void BM_RecvBufferCycle(benchmark::State& state) {
  // Steady-state cycle: insert, deliver, discard — what one high-rate
  // message costs the buffer.
  protocol::RecvBuffer buffer;
  protocol::SeqNum next = 1;
  for (auto _ : state) {
    auto msg = make_data(64);
    msg.seq = next++;
    buffer.insert(std::move(msg));
    while (buffer.next_deliverable(next) != nullptr) buffer.mark_delivered();
    buffer.discard_up_to(next - 1);
  }
}
BENCHMARK(BM_RecvBufferCycle);

void BM_FlowControlAllowance(benchmark::State& state) {
  protocol::ProtocolConfig cfg;
  protocol::FlowControl fc(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc.allowance(1000, 80, 3, 500000, 500100));
  }
}
BENCHMARK(BM_FlowControlAllowance);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<size_t>(state.range(0)),
                              std::byte{0xA5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::crc32(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1350)->Arg(8850);

}  // namespace

BENCHMARK_MAIN();
