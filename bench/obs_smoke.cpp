// Observability smoke bench: one quick single-ring point and one quick
// K=4 multi-ring point, each emitted as BENCH_obs_smoke_*.{json,csv}, plus
// an on-demand flight-recorder dump of the single-ring run. This is the
// binary tools/ci.sh's `obs` stage runs and feeds through
// tools/validate_bench_json.py — it exists to fail CI when instrumentation
// regresses (empty histograms, missing quantiles, unserializable registry),
// without paying a full figure sweep.
#include "bench_common.hpp"
#include "multiring/measure.hpp"
#include "obs/flight.hpp"

namespace {

using namespace accelring::bench;
using accelring::harness::PointResult;

PointConfig smoke_point() {
  PointConfig pc = base_point(/*ten_gig=*/false);
  pc.proto = accelring::harness::bench_protocol(Variant::kAccelerated);
  pc.service = Service::kAgreed;
  pc.offered_mbps = 300;
  pc.warmup = accelring::util::msec(50);
  pc.measure = accelring::util::msec(100);
  return pc;
}

/// On-demand (healthy-run) flight dump: re-run the smoke point's cluster
/// shape briefly and write its black box next to the bench artifacts.
void dump_healthy_flight() {
  using accelring::harness::SimCluster;
  const PointConfig pc = smoke_point();
  SimCluster cluster(pc.nodes, pc.fabric, pc.proto, pc.profile, pc.seed);
  cluster.enable_metrics();
  cluster.start_static();
  cluster.run_until(accelring::util::msec(20));

  const accelring::obs::MetricsRegistry merged = cluster.merged_metrics();
  accelring::obs::FlightRecord record;
  record.scenario = "obs_smoke_healthy";
  record.seed = pc.seed;
  record.captured_at = accelring::util::msec(20);
  record.metrics = &merged;
  for (int i = 0; i < cluster.size(); ++i) {
    accelring::obs::FlightNode node;
    node.name = "node" + std::to_string(i);
    node.events = cluster.tracer(i).snapshot();
    record.nodes.push_back(std::move(node));
  }
  const std::string path =
      accelring::obs::dump_flight(record, bench_output_dir());
  if (path.empty()) {
    std::fprintf(stderr, "warning: flight dump failed\n");
  } else {
    std::fprintf(stderr, "flight record: %s\n", path.c_str());
  }
}

/// Adapt a multi-ring result to the single-ring point schema so both smoke
/// artifacts share one format (and one validator).
PointResult to_point(const accelring::multiring::MultiPointResult& m) {
  PointResult p;
  p.offered_mbps = m.offered_mbps;
  p.achieved_mbps = m.merged_mbps;
  p.mean_latency = m.mean_latency;
  p.p50_latency = m.p50_latency;
  p.p90_latency = m.p90_latency;
  p.p99_latency = m.p99_latency;
  p.p999_latency = m.p999_latency;
  p.max_latency = m.max_latency;
  p.messages = m.messages;
  p.buffer_drops = m.buffer_drops;
  p.retransmits = m.retransmits;
  p.submit_rejected = m.submit_rejected;
  p.max_cpu_utilization = m.max_cpu_utilization;
  p.metrics = m.metrics;
  return p;
}

}  // namespace

int main() {
  std::printf("==== Observability smoke: 1-ring + 4-ring points ====\n\n");

  Curve single;
  single.label = "library / accelerated / agreed / 1350B";
  single.points.push_back(accelring::harness::run_point(smoke_point()));
  print_curve(single);
  emit_bench_artifacts("obs_smoke_1ring", {single});

  accelring::multiring::MultiPointConfig mc;
  mc.ring.rings = 4;
  mc.ring.nodes_per_ring = 8;
  mc.ring.fabric = accelring::simnet::FabricParams::ten_gig();
  mc.ring.proto = accelring::harness::bench_protocol(Variant::kAccelerated);
  mc.ring.profile = ImplProfile::kLibrary;
  mc.service = Service::kAgreed;
  mc.offered_mbps = 2000;
  mc.streams_per_node = 64;
  mc.warmup = accelring::util::msec(50);
  mc.measure = accelring::util::msec(100);
  Curve multi;
  multi.label = "K=4 multiring / library / accelerated / agreed / 1350B";
  multi.points.push_back(to_point(accelring::multiring::run_multiring_point(mc)));
  print_curve(multi);
  emit_bench_artifacts("obs_smoke_4ring", {multi});

  dump_healthy_flight();
  return 0;
}
