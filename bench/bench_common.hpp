// Shared setup for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one figure of the paper: it sweeps offered
// load for the relevant (implementation, protocol, service, fabric, payload)
// combinations and prints latency-vs-throughput rows. Absolute numbers come
// from a simulator calibrated against 2012-era hardware (DESIGN.md §1); the
// *shape* — who wins, by what factor, where the knees and crossovers sit —
// is the reproduction target recorded in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/sweep.hpp"

namespace accelring::bench {

using harness::Curve;
using harness::ImplProfile;
using harness::PointConfig;
using protocol::Service;
using protocol::Variant;

/// Offered-load grids (aggregate clean payload Mbps across 8 senders).
inline std::vector<double> one_gig_loads() {
  return {100, 200, 300, 400, 500, 600, 700, 800, 900, 950};
}
inline std::vector<double> ten_gig_loads() {
  return {250, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000};
}
inline std::vector<double> ten_gig_large_loads() {
  return {1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000};
}

/// Measurement windows: short enough to keep a full figure under a few
/// minutes of wall clock, long enough for tens of thousands of samples.
inline PointConfig base_point(bool ten_gig) {
  PointConfig pc;
  pc.nodes = 8;
  pc.fabric = ten_gig ? simnet::FabricParams::ten_gig()
                      : simnet::FabricParams::one_gig();
  pc.warmup = util::msec(100);
  pc.measure = util::msec(300);
  return pc;
}

inline std::string curve_label(ImplProfile profile, Variant variant,
                               Service service, size_t payload) {
  std::string label = harness::profile_name(profile);
  label += variant == Variant::kOriginal ? " / original" : " / accelerated";
  label += service == Service::kSafe ? " / safe" : " / agreed";
  label += " / " + std::to_string(payload) + "B";
  return label;
}

/// Run and print the standard 6-curve figure (3 impls x 2 variants).
inline void run_figure(const char* title, bool ten_gig, Service service,
                       const std::vector<double>& loads) {
  std::printf("==== %s ====\n\n", title);
  for (ImplProfile profile :
       {ImplProfile::kLibrary, ImplProfile::kDaemon, ImplProfile::kSpread}) {
    for (Variant variant : {Variant::kOriginal, Variant::kAccelerated}) {
      PointConfig pc = base_point(ten_gig);
      pc.profile = profile;
      pc.proto = harness::bench_protocol(variant);
      pc.service = service;
      pc.payload_size = 1350;
      harness::print_curve(harness::run_curve(
          curve_label(profile, variant, service, 1350), pc, loads));
    }
  }
}

}  // namespace accelring::bench
