// Shared setup for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one figure of the paper: it sweeps offered
// load for the relevant (implementation, protocol, service, fabric, payload)
// combinations and prints latency-vs-throughput rows. Absolute numbers come
// from a simulator calibrated against 2012-era hardware (DESIGN.md §1); the
// *shape* — who wins, by what factor, where the knees and crossovers sit —
// is the reproduction target recorded in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"

namespace accelring::bench {

using harness::Curve;
using harness::ImplProfile;
using harness::PointConfig;
using protocol::Service;
using protocol::Variant;

/// Offered-load grids (aggregate clean payload Mbps across 8 senders).
inline std::vector<double> one_gig_loads() {
  return {100, 200, 300, 400, 500, 600, 700, 800, 900, 950};
}
inline std::vector<double> ten_gig_loads() {
  return {250, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000};
}
inline std::vector<double> ten_gig_large_loads() {
  return {1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000};
}

/// Measurement windows: short enough to keep a full figure under a few
/// minutes of wall clock, long enough for tens of thousands of samples.
inline PointConfig base_point(bool ten_gig) {
  PointConfig pc;
  pc.nodes = 8;
  pc.fabric = ten_gig ? simnet::FabricParams::ten_gig()
                      : simnet::FabricParams::one_gig();
  pc.warmup = util::msec(100);
  pc.measure = util::msec(300);
  return pc;
}

inline std::string curve_label(ImplProfile profile, Variant variant,
                               Service service, size_t payload) {
  std::string label = harness::profile_name(profile);
  label += variant == Variant::kOriginal ? " / original" : " / accelerated";
  label += service == Service::kSafe ? " / safe" : " / agreed";
  label += " / " + std::to_string(payload) + "B";
  return label;
}

/// Directory machine-readable artifacts land in: $ACCELRING_BENCH_DIR, or
/// the working directory when unset.
inline std::string bench_output_dir() {
  const char* dir = std::getenv("ACCELRING_BENCH_DIR");
  return (dir != nullptr && *dir != '\0') ? dir : ".";
}

/// Serialize one point's scalar fields as a JSON object value.
inline void append_point(obs::JsonWriter& w, const harness::PointResult& p) {
  w.begin_object();
  w.kv("offered_mbps", p.offered_mbps);
  w.kv("achieved_mbps", p.achieved_mbps);
  w.kv("messages", p.messages);
  w.key("latency_ns")
      .begin_object()
      .kv("mean", p.mean_latency)
      .kv("p50", p.p50_latency)
      .kv("p90", p.p90_latency)
      .kv("p99", p.p99_latency)
      .kv("p999", p.p999_latency)
      .kv("max", p.max_latency)
      .end_object();
  w.kv("retransmits", p.retransmits);
  w.kv("buffer_drops", p.buffer_drops);
  w.kv("socket_drops", p.socket_drops);
  w.kv("submit_rejected", p.submit_rejected);
  w.kv("max_cpu_utilization", p.max_cpu_utilization);
  w.end_object();
}

/// Write BENCH_<name>.json and BENCH_<name>.csv into bench_output_dir().
/// The JSON carries every point's latency quantiles plus, per curve, the
/// full metric registry of its highest-achieving point (histograms included,
/// so tools/validate_bench_json.py can reject an instrumentation regression
/// that leaves them empty). tools/plot_figures.py consumes either format.
inline void emit_bench_artifacts(const std::string& name,
                                 const std::vector<Curve>& curves) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", name);
  w.key("curves").begin_array();
  std::string csv =
      "label,offered_mbps,achieved_mbps,messages,mean_us,p50_us,p90_us,"
      "p99_us,p999_us,max_us,retransmits,drops,cpu\n";
  for (const Curve& curve : curves) {
    w.begin_object();
    w.kv("label", curve.label);
    w.key("points").begin_array();
    const harness::PointResult* best = nullptr;
    for (const harness::PointResult& p : curve.points) {
      append_point(w, p);
      if (best == nullptr || p.achieved_mbps > best->achieved_mbps) best = &p;
      char row[512];
      std::snprintf(
          row, sizeof(row),
          "%s,%.0f,%.1f,%llu,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%llu,%llu,%.3f\n",
          curve.label.c_str(), p.offered_mbps, p.achieved_mbps,
          static_cast<unsigned long long>(p.messages),
          util::to_usec(p.mean_latency), util::to_usec(p.p50_latency),
          util::to_usec(p.p90_latency), util::to_usec(p.p99_latency),
          util::to_usec(p.p999_latency), util::to_usec(p.max_latency),
          static_cast<unsigned long long>(p.retransmits),
          static_cast<unsigned long long>(p.buffer_drops + p.socket_drops),
          p.max_cpu_utilization);
      csv += row;
    }
    w.end_array();
    if (best != nullptr && best->metrics) {
      w.key("metrics");
      obs::append_registry(w, *best->metrics);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string base = bench_output_dir() + "/BENCH_" + name;
  if (!obs::write_text_file(base + ".json", w.str())) {
    std::fprintf(stderr, "warning: could not write %s.json\n", base.c_str());
  }
  if (!obs::write_text_file(base + ".csv", csv)) {
    std::fprintf(stderr, "warning: could not write %s.csv\n", base.c_str());
  }
  std::fprintf(stderr, "artifacts: %s.json %s.csv\n", base.c_str(),
               base.c_str());
}

/// Run and print the standard 6-curve figure (3 impls x 2 variants), then
/// emit BENCH_<name>.{json,csv}.
inline void run_figure(const char* name, const char* title, bool ten_gig,
                       Service service, const std::vector<double>& loads) {
  std::printf("==== %s ====\n\n", title);
  std::vector<Curve> curves;
  for (ImplProfile profile :
       {ImplProfile::kLibrary, ImplProfile::kDaemon, ImplProfile::kSpread}) {
    for (Variant variant : {Variant::kOriginal, Variant::kAccelerated}) {
      PointConfig pc = base_point(ten_gig);
      pc.profile = profile;
      pc.proto = harness::bench_protocol(variant);
      pc.service = service;
      pc.payload_size = 1350;
      curves.push_back(harness::run_curve(
          curve_label(profile, variant, service, 1350), pc, loads));
      harness::print_curve(curves.back());
    }
  }
  emit_bench_artifacts(name, curves);
}

}  // namespace accelring::bench
