// Figure 5: Safe delivery latency vs throughput, 10-gigabit network.
//
// Paper shapes: like Figure 3 with higher absolute latencies; Spread reaches
// ~2.3 Gbps maximum with the accelerated protocol (vs ~1.7 original), the
// daemon prototype ~3.3 Gbps, the library prototype ~4.6 Gbps.
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  run_figure("fig5_safe_10g",
             "Figure 5: Safe delivery latency vs throughput, 10GbE, 1350B",
             /*ten_gig=*/true, Service::kSafe, ten_gig_loads());
  return 0;
}
