// Geo-distribution sweep: one ring stretched over progressively wider
// multi-datacenter topologies — LAN baseline, metro (2 DCs / 2 ms),
// regional (3 DCs / 10 ms), continental (3 DCs / 50 ms, asymmetric return
// bandwidth), global (4 DCs / 100 ms) — at loads scaled to each class's
// rotation-bound capacity.
//
// The paper's protocol is a data-center protocol: a token rotation crosses
// every WAN boundary on the ring, so capacity falls roughly as
// window_bytes / rotation_time while delivery latency grows with the
// rotation. This figure quantifies that cliff, and the windows/timeouts are
// rescaled per class (bigger windows amortize the long rotation; adaptive
// timeouts track it) so each class runs at its own best configuration
// rather than a LAN-tuned strawman.
//
// `--smoke` runs the three narrow classes at two loads with short windows
// for CI; the wan_smoke stage validates the emitted
// BENCH_wan_topologies.json with tools/validate_bench_json.py.
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"

namespace accelring::bench {
namespace {

struct TopologyClass {
  const char* name;
  int num_dcs;        // 1 = classic single switch
  util::Nanos wan_prop;  // one-way WAN propagation
  double asym = 1.0;  // bps_ba multiplier (continental: half-rate return)
};

constexpr int kNodes = 8;
constexpr size_t kPayload = 1350;

simnet::Topology class_topology(const TopologyClass& tc) {
  simnet::Topology topo = simnet::make_wan_topology(
      kNodes, tc.num_dcs, tc.wan_prop, /*wan_bps=*/1e9, /*full_mesh=*/true,
      /*rack_size=*/2);
  for (simnet::WanLinkParams& link : topo.wan_links) link.bps_ba *= tc.asym;
  return topo;
}

/// One token rotation crosses each DC boundary once (hosts sit on the ring
/// in DC order), so the rotation is dominated by num_dcs WAN propagations.
util::Nanos rotation_estimate(const TopologyClass& tc) {
  return (tc.num_dcs > 1 ? tc.num_dcs * tc.wan_prop : 0) + util::msec(1);
}

/// Windows and timers rescaled for the class: wide windows keep the pipe
/// full across a long rotation, and every membership timer sits far enough
/// above the rotation that geography alone never looks like failure. The
/// adaptive estimator then tightens the live timeouts toward the measured
/// rotation.
protocol::ProtocolConfig class_protocol(const TopologyClass& tc) {
  protocol::ProtocolConfig cfg =
      harness::bench_protocol(protocol::Variant::kAccelerated);
  if (tc.num_dcs > 1) {
    cfg.personal_window = 120;
    cfg.global_window = 1000;
    cfg.accelerated_window = 100;
    cfg.max_seq_gap = 8192;
    cfg.adaptive_timeouts = true;
    const util::Nanos rot = rotation_estimate(tc);
    cfg.timeouts.token_retransmit =
        std::max(cfg.timeouts.token_retransmit, 3 * rot);
    cfg.timeouts.token_loss = std::max(cfg.timeouts.token_loss, 8 * rot);
    cfg.timeouts.join = std::max(cfg.timeouts.join, 2 * rot);
    cfg.timeouts.consensus = std::max(cfg.timeouts.consensus, 16 * rot);
  }
  return cfg;
}

/// Rotation-bound capacity estimate: the ring moves at most one personal
/// window per member per rotation.
double capacity_mbps_estimate(const TopologyClass& tc,
                              const protocol::ProtocolConfig& cfg) {
  const double per_rotation_bits = static_cast<double>(cfg.personal_window) *
                                   kNodes * static_cast<double>(kPayload) * 8.0;
  const double rotation_sec =
      static_cast<double>(rotation_estimate(tc)) * 1e-9;
  return std::min(900.0, per_rotation_bits / rotation_sec / 1e6);
}

harness::Curve run_class(const TopologyClass& tc, bool smoke) {
  PointConfig pc = base_point(/*ten_gig=*/false);
  pc.nodes = kNodes;
  if (tc.num_dcs > 1) pc.topology = class_topology(tc);
  pc.proto = class_protocol(tc);
  pc.service = Service::kAgreed;
  pc.payload_size = kPayload;
  // Windows sized in rotations, not wall time: the global class needs
  // seconds of simulated time to see the same number of rotations the LAN
  // class sees in 100 ms.
  const util::Nanos rot = rotation_estimate(tc);
  pc.warmup = std::max<util::Nanos>(pc.warmup, (smoke ? 5 : 12) * rot);
  pc.measure = std::max<util::Nanos>(smoke ? util::msec(120) : pc.measure,
                                     (smoke ? 10 : 30) * rot);

  const double cap = capacity_mbps_estimate(tc, pc.proto);
  std::vector<double> loads;
  for (double f : smoke ? std::vector<double>{0.3, 0.7}
                        : std::vector<double>{0.2, 0.4, 0.6, 0.8, 0.95}) {
    loads.push_back(cap * f);
  }

  char label[128];
  std::snprintf(label, sizeof(label), "%s / %dDC / %.0fms / cap~%.0fMbps",
                tc.name, tc.num_dcs,
                static_cast<double>(tc.wan_prop) / 1e6, cap);
  harness::Curve curve = harness::run_curve(label, pc, loads);
  harness::print_curve(curve);
  return curve;
}

int run(bool smoke) {
  std::printf("==== Total order across datacenters: topology classes ====\n\n");
  const std::vector<TopologyClass> classes = {
      {"lan", 1, 0},
      {"metro", 2, util::msec(2)},
      {"regional", 3, util::msec(10)},
      {"continental", 3, util::msec(50), 0.5},
      {"global", 4, util::msec(100)},
  };
  std::vector<harness::Curve> curves;
  for (const TopologyClass& tc : classes) {
    if (smoke && tc.wan_prop > util::msec(10)) continue;  // CI budget
    curves.push_back(run_class(tc, smoke));
  }
  emit_bench_artifacts("wan_topologies", curves);
  return 0;
}

}  // namespace
}  // namespace accelring::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return accelring::bench::run(smoke);
}
