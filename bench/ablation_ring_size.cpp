// Ablation A4: ring size scaling.
//
// Token-based protocols trade per-message cost for a token rotation whose
// length grows with the ring. This sweep holds aggregate offered load
// constant and varies the number of participants, for both protocols.
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  std::printf("==== Ablation: ring size (library, 1GbE, agreed, 600 Mbps "
              "offered) ====\n\n");
  std::printf("%8s %-14s %12s %12s %12s\n", "nodes", "protocol", "achieved",
              "mean_lat_us", "p99_us");
  for (int nodes : {2, 4, 8, 12, 16}) {
    for (Variant variant : {Variant::kOriginal, Variant::kAccelerated}) {
      PointConfig pc = base_point(/*ten_gig=*/false);
      pc.nodes = nodes;
      pc.profile = ImplProfile::kLibrary;
      pc.proto = accelring::harness::bench_protocol(variant);
      pc.service = Service::kAgreed;
      pc.offered_mbps = 600;
      const auto r = accelring::harness::run_point(pc);
      std::printf("%8d %-14s %12.1f %12.1f %12.1f\n", nodes,
                  variant == Variant::kOriginal ? "original" : "accelerated",
                  r.achieved_mbps, accelring::util::to_usec(r.mean_latency),
                  accelring::util::to_usec(r.p99_latency));
    }
  }
  std::printf("\nexpected shape: latency grows with ring size for both "
              "protocols (longer token rotation); the accelerated protocol "
              "stays ahead at every size\n");
  return 0;
}
