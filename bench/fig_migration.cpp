// Live shard-migration benchmark: client-observed merged latency and
// throughput before / during / after a totally-ordered handoff
// (docs/MULTIRING.md), plus the handoff's own cost — duration from
// start_migration() to the last activation, peak held messages, and the
// marker count the merged streams carried.
//
// Two handoff shapes, each a curve of three phase points:
//   * add_ring    — K rings run but only K-1 own hash space; the plan
//     activates the idle ring (elastic scale-out under load);
//   * rebalance   — plan_move_fraction moves half of ring 0's arcs to
//     ring 1 (hot-shard relief).
// The claim under test: the handoff is a millisecond-scale blip, not an
// outage — "during" throughput stays near offered because only moving-range
// submissions hold (freeze -> activation), and "after" latency returns to
// the "before" baseline.
//
// Axis units: this figure is message-oriented, so offered_mbps /
// achieved_mbps in the artifacts carry *kilo-messages per second* (the
// shared point schema reused, as in BENCH_kv_*). Latency is submit to
// merged client receipt at node 0. `--smoke` runs one short point per
// shape for CI; artifacts pass tools/validate_bench_json.py.
#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "multiring/ring_set.hpp"

namespace accelring::bench {
namespace {

enum class Shape { kAddRing, kRebalance };

constexpr int kPhases = 3;  // before / during / after
const char* const kPhaseName[kPhases] = {"before", "during", "after"};

struct PhaseResult {
  double duration_ms = 0;
  uint64_t messages = 0;     ///< merged deliveries at node 0, this phase
  double achieved_kops = 0;  ///< messages / duration
  obs::Histogram latency;    ///< submit -> merged receipt, node 0
};

struct MigrationRun {
  double offered_kops = 0;
  PhaseResult phase[kPhases];
  double handoff_ms = 0;      ///< start_migration -> completion
  uint64_t held_peak = 0;     ///< max in-flight held submissions observed
  uint64_t markers = 0;       ///< handoff markers merged at node 0
  uint64_t map_version = 0;   ///< canonical ShardMap version after the run
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// One run: keyed open-loop traffic over K = 4 rings x 8 nodes at
/// `rate` total messages/sec, with the migration launched at `t_mig`.
MigrationRun run_migration_point(Shape shape, double rate, util::Nanos t_mig,
                                 util::Nanos stop, uint64_t seed) {
  multiring::MultiRingConfig mc;
  mc.rings = 4;
  mc.nodes_per_ring = 8;
  mc.fabric = simnet::FabricParams::ten_gig();
  mc.proto = harness::bench_protocol(Variant::kAccelerated);
  mc.profile = ImplProfile::kLibrary;
  mc.merge_batch = 64;
  mc.skip_interval = util::usec(100);
  mc.seed = seed;
  if (shape == Shape::kAddRing) mc.active_rings = mc.rings - 1;
  multiring::RingSet rings(mc);
  rings.enable_metrics();

  const util::Nanos measure_from = util::msec(100);
  const int nodes = rings.nodes_per_ring();
  bool launched = false;
  util::Nanos mig_start = 0, mig_end = 0;
  uint64_t held_peak = 0;

  MigrationRun run;
  rings.set_on_merged([&](int node, int /*ring*/,
                          const protocol::Delivery& d, util::Nanos at) {
    if (node != 0) return;                    // one observer; all identical
    if (at < measure_from || at > stop) return;
    if (d.payload.size() < sizeof(int64_t)) return;
    int64_t sent = 0;
    std::memcpy(&sent, d.payload.data(), sizeof(sent));
    // Phase by the migration's exact progress, not a sampled clock:
    // completed_migrations() flips the instant the last activation merges.
    int phase = 0;
    if (launched) phase = rings.completed_migrations() == 0 ? 1 : 2;
    run.phase[phase].latency.record(at - sent);
    ++run.phase[phase].messages;
  });

  // Open-loop keyed traffic: one submission every 1/rate sec, round-robin
  // over nodes and a 512-stream key pool (mixed by the router, so the pool
  // spans every ring's arcs — including the ranges the plan moves).
  const util::Nanos gap =
      static_cast<util::Nanos>(1e9 / rate) > 0
          ? static_cast<util::Nanos>(1e9 / rate)
          : 1;
  uint64_t next = 0;
  std::function<void()> pump = [&] {
    if (rings.eq().now() >= stop) return;
    std::vector<std::byte> payload(64);
    const int64_t now = rings.eq().now();
    std::memcpy(payload.data(), &now, sizeof(now));
    rings.submit_keyed(static_cast<int>(next % nodes), next % 512,
                       protocol::Service::kAgreed, std::move(payload));
    ++next;
    rings.eq().schedule_after(gap, pump);
  };

  // Migration completion watcher: 100 us resolution for the duration
  // number, and the held-message high-water mark while in flight.
  std::function<void()> watch = [&] {
    held_peak = std::max(held_peak,
                         static_cast<uint64_t>(rings.held_messages()));
    if (rings.completed_migrations() > 0) {
      if (mig_end == 0) mig_end = rings.eq().now();
      return;
    }
    rings.eq().schedule_after(util::usec(100), watch);
  };

  rings.start_static();
  rings.eq().schedule(util::msec(20), pump);
  rings.eq().schedule(t_mig, [&] {
    const multiring::MigrationPlan plan =
        shape == Shape::kAddRing
            ? rings.shards().plan_add_ring(mc.rings - 1)
            : rings.shards().plan_move_fraction(0, 1, 0.5);
    launched = rings.start_migration(plan);
    if (launched) {
      mig_start = rings.eq().now();
      watch();
    }
  });
  rings.run_until(stop + util::msec(100));  // drain in-flight deliveries

  if (launched && mig_end == 0) {
    std::fprintf(stderr, "warning: migration did not complete by stop\n");
    mig_end = stop;
  }
  if (!launched) {
    std::fprintf(stderr, "warning: start_migration refused the plan\n");
    mig_start = mig_end = stop;
  }
  run.offered_kops = rate / 1000.0;
  const util::Nanos bounds[kPhases + 1] = {measure_from, mig_start, mig_end,
                                           stop};
  for (int ph = 0; ph < kPhases; ++ph) {
    PhaseResult& p = run.phase[ph];
    p.duration_ms = util::to_sec(bounds[ph + 1] - bounds[ph]) * 1000.0;
    p.achieved_kops = p.duration_ms > 0
                          ? static_cast<double>(p.messages) / p.duration_ms
                          : 0;
  }
  run.handoff_ms = util::to_sec(mig_end - mig_start) * 1000.0;
  run.held_peak = held_peak;
  run.markers = rings.merger(0).stats().handoff_markers;
  run.map_version = rings.shards().version();
  auto merged = std::make_shared<obs::MetricsRegistry>(rings.merged_metrics());
  // The validator's instrumentation guard keys on this histogram; merge the
  // client-observed phases in so the guard sees this figure's latency too.
  for (int ph = 0; ph < kPhases; ++ph) {
    merged->histogram("harness", "delivery_latency_ns")
        .merge(run.phase[ph].latency);
  }
  run.metrics = std::move(merged);
  return run;
}

void append_phase_point(obs::JsonWriter& w, const MigrationRun& run, int ph) {
  const PhaseResult& p = run.phase[ph];
  w.begin_object();
  w.kv("phase", std::string_view(kPhaseName[ph]));
  w.kv("offered_mbps", run.offered_kops);    // kmsgs/s (see file comment)
  w.kv("achieved_mbps", p.achieved_kops);    // kmsgs/s
  w.kv("messages", p.messages);
  w.key("latency_ns")
      .begin_object()
      .kv("mean", static_cast<int64_t>(p.latency.mean()))
      .kv("p50", p.latency.quantile(0.5))
      .kv("p90", p.latency.quantile(0.9))
      .kv("p99", p.latency.quantile(0.99))
      .kv("p999", p.latency.quantile(0.999))
      .kv("max", p.latency.max())
      .end_object();
  w.kv("duration_ms", p.duration_ms);
  if (ph == 1) {  // the handoff's own cost rides on the "during" point
    w.kv("handoff_ms", run.handoff_ms);
    w.kv("held_peak", run.held_peak);
    w.kv("markers", run.markers);
    w.kv("map_version", run.map_version);
  }
  w.end_object();
}

void emit_artifacts(const std::string& name,
                    const std::vector<std::pair<std::string, MigrationRun>>&
                        curves) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", name);
  w.key("curves").begin_array();
  std::string csv =
      "label,phase,offered_kops,achieved_kops,messages,duration_ms,p50_us,"
      "p99_us,handoff_ms,held_peak,markers\n";
  for (const auto& [label, run] : curves) {
    w.begin_object();
    w.kv("label", label);
    w.key("points").begin_array();
    for (int ph = 0; ph < kPhases; ++ph) {
      append_phase_point(w, run, ph);
      char row[256];
      std::snprintf(row, sizeof(row),
                    "%s,%s,%.1f,%.1f,%llu,%.2f,%.1f,%.1f,%.2f,%llu,%llu\n",
                    label.c_str(), kPhaseName[ph], run.offered_kops,
                    run.phase[ph].achieved_kops,
                    static_cast<unsigned long long>(run.phase[ph].messages),
                    run.phase[ph].duration_ms,
                    util::to_usec(run.phase[ph].latency.quantile(0.5)),
                    util::to_usec(run.phase[ph].latency.quantile(0.99)),
                    ph == 1 ? run.handoff_ms : 0.0,
                    static_cast<unsigned long long>(ph == 1 ? run.held_peak
                                                            : 0),
                    static_cast<unsigned long long>(ph == 1 ? run.markers
                                                            : 0));
      csv += row;
    }
    w.end_array();
    if (run.metrics) {
      w.key("metrics");
      obs::append_registry(w, *run.metrics);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string base = bench_output_dir() + "/BENCH_" + name;
  if (!obs::write_text_file(base + ".json", w.str())) {
    std::fprintf(stderr, "warning: could not write %s.json\n", base.c_str());
  }
  if (!obs::write_text_file(base + ".csv", csv)) {
    std::fprintf(stderr, "warning: could not write %s.csv\n", base.c_str());
  }
  std::fprintf(stderr, "artifacts: %s.json %s.csv\n", base.c_str(),
               base.c_str());
}

void print_run(const std::string& label, const MigrationRun& run) {
  for (int ph = 0; ph < kPhases; ++ph) {
    const PhaseResult& p = run.phase[ph];
    std::printf("%-24s %-7s %9.1f %9.1f %8llu %9.2f %9.1f %9.1f\n",
                label.c_str(), kPhaseName[ph], run.offered_kops,
                p.achieved_kops, static_cast<unsigned long long>(p.messages),
                p.duration_ms, util::to_usec(p.latency.quantile(0.5)),
                util::to_usec(p.latency.quantile(0.99)));
  }
  std::printf("%-24s handoff %.2f ms, held peak %llu, markers %llu, "
              "map v%llu\n\n",
              label.c_str(), run.handoff_ms,
              static_cast<unsigned long long>(run.held_peak),
              static_cast<unsigned long long>(run.markers),
              static_cast<unsigned long long>(run.map_version));
}

void print_header() {
  std::printf("%-24s %-7s %9s %9s %8s %9s %9s %9s\n", "curve", "phase",
              "off_kops", "ach_kops", "msgs", "dur_ms", "p50_us", "p99_us");
}

}  // namespace
}  // namespace accelring::bench

int main(int argc, char** argv) {
  using namespace accelring;
  using namespace accelring::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<std::pair<std::string, MigrationRun>> curves;
  if (smoke) {
    std::printf("==== Live migration smoke: K=4, 8 nodes, ten-gig ====\n\n");
    print_header();
    for (const auto& [label, shape] :
         {std::pair<const char*, Shape>{"add_ring", Shape::kAddRing},
          {"rebalance", Shape::kRebalance}}) {
      MigrationRun run = run_migration_point(shape, 40'000.0, util::msec(250),
                                             util::msec(450), 1);
      print_run(label, run);
      curves.emplace_back(label, std::move(run));
    }
    emit_artifacts("migration_smoke", curves);
    return 0;
  }

  std::printf(
      "==== Live migration: handoff cost under load (K=4, ten-gig) ====\n\n");
  print_header();
  for (const double rate : {60'000.0, 120'000.0}) {
    for (const auto& [name, shape] :
         {std::pair<const char*, Shape>{"add_ring", Shape::kAddRing},
          {"rebalance", Shape::kRebalance}}) {
      const std::string label =
          std::string(name) + " / " + std::to_string(int(rate / 1000)) +
          "kmsgs";
      MigrationRun run = run_migration_point(shape, rate, util::msec(400),
                                             util::msec(900), 1);
      print_run(label, run);
      curves.emplace_back(label, std::move(run));
    }
  }
  emit_artifacts("migration", curves);
  return 0;
}
