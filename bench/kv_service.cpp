// Sharded KV service benchmark: completed ops/sec and client-observed
// latency for K = 1, 4, 8 shards on the simulated 10-gigabit fabric.
//
// Each K runs the full stack end to end — RingSet (one ring per shard),
// rsm replicas with chunked snapshots and compaction, lease-based local
// reads, exactly-once session frontends — under the open-loop session
// workload driver (zipf keys, diurnal arrivals, up to a million sessions).
// All K share one offered-load grid whose top point sits past the single
// ring's saturation knee: K=1 collapses there while K=4 and K=8 keep flat
// client latency, which is the sharding claim in one table.
//
// Axis units: this figure is operation-oriented, so offered_mbps /
// achieved_mbps in the artifacts carry *kilo-ops per second* (the shared
// point schema's throughput fields, reused so one validator and plotter
// handle every artifact). Latency quantiles are client-observed completion
// times in nanoseconds, split by path (lease read / ordered read / write)
// in the per-point kv extras, and by shard in each point's "shards" array
// (ops + op-mix + p50/p99 per shard — the live balance check for the
// consistent-hash map, and the before/after comparison for migrations).
//
// `--smoke [--shards K]` runs one short single-K point for CI; the full
// sweep takes a few minutes. `--durable` gives every node a SimDisk and
// runs the replicas over WAL + checkpoint stores (storage::ReplicaStore),
// so the smoke also covers the persistence write path end to end.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kv/service.hpp"
#include "kv/workload.hpp"
#include "multiring/ring_set.hpp"
#include "storage/replica_store.hpp"
#include "storage/sim_disk.hpp"

namespace accelring::bench {
namespace {

/// Per-shard slice of the measure window: which shard did the work and at
/// what client-observed latency. A balanced map should show ops within the
/// consistent-hash bound of each other and near-identical quantiles; a hot
/// shard shows up as one row with outsized ops and a fatter p99.
struct ShardLoad {
  uint64_t ops = 0;            ///< completions resolved by this shard
  uint64_t lease_reads = 0;
  uint64_t ordered_reads = 0;
  uint64_t mutations = 0;
  obs::Histogram latency;      ///< completion latency, this shard only
};

struct KvPoint {
  double offered_kops = 0;   ///< mean offered rate over the measure window
  double achieved_kops = 0;  ///< completed ops/sec over the measure window
  uint64_t measured = 0;     ///< completions inside the window
  uint64_t sessions_touched = 0;
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  kv::WorkloadStats stats;
  obs::Histogram latency;          ///< all completions
  obs::Histogram lease_read;
  obs::Histogram ordered_read;
  obs::Histogram write;
  std::vector<ShardLoad> per_shard;  ///< breakdown by Outcome::shard
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

KvPoint run_kv_point(int shards, double base_rate, uint64_t sessions,
                     util::Nanos stop, uint64_t seed, bool durable = false) {
  multiring::MultiRingConfig mc;
  mc.rings = shards;
  mc.nodes_per_ring = 8;
  mc.fabric = simnet::FabricParams::ten_gig();
  mc.proto = harness::bench_protocol(Variant::kAccelerated);
  mc.profile = ImplProfile::kLibrary;
  // The merged stream advances at most merge_batch slots per ring per
  // rotation, and an underfilled ring holds the rotation until its skip
  // daemon fires — so merged throughput per ring is capped near
  // merge_batch / skip_interval (the default 16 / 500us ~= 32 kops/ring
  // saturates long before the rings do). Open the batch and tighten the
  // skip period so the merge layer stays off the critical path.
  mc.merge_batch = 64;
  mc.skip_interval = util::usec(100);
  mc.seed = seed;
  multiring::RingSet rings(mc);
  rings.enable_metrics();

  kv::ServiceConfig scfg;
  scfg.shards = shards;
  scfg.replica.checkpoint_interval = 4096;
  scfg.preload_keys = 10'000;
  scfg.preload_value_size = 64;
  // Per-node disks outlive the service; stores are per-(node, shard).
  std::vector<std::unique_ptr<storage::SimDisk>> disks;
  if (durable) {
    for (int n = 0; n < mc.nodes_per_ring; ++n) {
      disks.push_back(std::make_unique<storage::SimDisk>(seed + 1000 + n));
    }
    scfg.store_factory = [&disks](int node, int shard) {
      return std::make_unique<storage::ReplicaStore>(
          *disks[static_cast<size_t>(node)],
          "shard" + std::to_string(shard));
    };
  }
  kv::KvService service(rings, scfg);
  service.bind_metrics();
  rings.start_static();

  // Per-shard tap: the service's outcome observer sees every resolution
  // (the workload observes per-op completion callbacks, not this slot), so
  // it can split the measure window by Outcome::shard.
  std::vector<ShardLoad> per_shard(static_cast<size_t>(shards));
  const util::Nanos measure_from = util::msec(150);
  service.set_on_outcome(
      [&per_shard, measure_from, stop](int /*node*/,
                                       const kv::Frontend::Outcome& o) {
        if (o.done_at < measure_from || o.done_at > stop) return;
        if (o.shard < 0 || static_cast<size_t>(o.shard) >= per_shard.size()) {
          return;
        }
        ShardLoad& s = per_shard[static_cast<size_t>(o.shard)];
        ++s.ops;
        if (o.type == kv::OpType::kGet) {
          if (o.lease_served) {
            ++s.lease_reads;
          } else {
            ++s.ordered_reads;
          }
        } else {
          ++s.mutations;
        }
        s.latency.record(o.done_at - o.issued_at);
      });

  kv::WorkloadConfig wcfg;
  wcfg.sessions = sessions;
  wcfg.keys = scfg.preload_keys;
  wcfg.zipf_s = 0.99;
  wcfg.read_fraction = 0.9;
  wcfg.value_size = 64;
  wcfg.base_rate = base_rate;
  wcfg.peak_factor = 2.0;
  wcfg.period = util::sec(1);
  wcfg.start = util::msec(50);
  wcfg.stop = stop;
  wcfg.measure_from = measure_from;
  wcfg.churn_per_sec = 50;
  wcfg.seed = seed;
  kv::SessionWorkload workload(service, wcfg);
  workload.start();
  rings.run_until(stop + util::msec(200));  // drain in-flight completions

  KvPoint p;
  const double window_sec = util::to_sec(wcfg.stop - wcfg.measure_from);
  p.offered_kops = wcfg.base_rate *
                   kv::diurnal_integral(wcfg.measure_from, wcfg.stop, wcfg) /
                   window_sec / 1000.0;
  p.achieved_kops = workload.measured_ops_per_sec() / 1000.0;
  p.measured = workload.stats().measured;
  p.sessions_touched = workload.stats().sessions_touched;
  p.timeouts = workload.stats().timeouts;
  p.retries = workload.stats().retries;
  p.stats = workload.stats();
  p.latency = workload.latency();
  p.lease_read = workload.lease_read_latency();
  p.ordered_read = workload.ordered_read_latency();
  p.write = workload.write_latency();
  p.per_shard = std::move(per_shard);
  auto merged = std::make_shared<obs::MetricsRegistry>(rings.merged_metrics());
  // The validator's instrumentation guard keys on this histogram; for an
  // op-oriented figure the client-observed completion latency is the
  // delivery latency of interest.
  merged->histogram("harness", "delivery_latency_ns").merge(p.latency);
  p.metrics = std::move(merged);
  return p;
}

void append_kv_point(obs::JsonWriter& w, const KvPoint& p) {
  auto quants = [&](const obs::Histogram& h) {
    w.begin_object()
        .kv("mean", static_cast<int64_t>(h.mean()))
        .kv("p50", h.quantile(0.5))
        .kv("p90", h.quantile(0.9))
        .kv("p99", h.quantile(0.99))
        .kv("p999", h.quantile(0.999))
        .kv("max", h.max())
        .end_object();
  };
  w.begin_object();
  w.kv("offered_mbps", p.offered_kops);   // kops/s (see file comment)
  w.kv("achieved_mbps", p.achieved_kops); // kops/s
  w.kv("messages", p.measured);
  w.key("latency_ns");
  quants(p.latency);
  w.kv("ops_per_sec", p.achieved_kops * 1000.0);
  w.kv("sessions", p.sessions_touched);
  w.kv("lease_reads", p.stats.measured_lease_reads);
  w.kv("ordered_reads", p.stats.measured_ordered_reads);
  w.kv("mutations", p.stats.measured_mutations);
  w.kv("timeouts", p.timeouts);
  w.kv("retries", p.retries);
  w.kv("read_lease_p50", p.lease_read.quantile(0.5));
  w.kv("read_lease_p99", p.lease_read.quantile(0.99));
  w.kv("read_ordered_p50", p.ordered_read.quantile(0.5));
  w.kv("read_ordered_p99", p.ordered_read.quantile(0.99));
  w.kv("write_p50", p.write.quantile(0.5));
  w.kv("write_p99", p.write.quantile(0.99));
  // Per-shard breakdown: who did the work, and at what latency. The ops
  // ratio across rows is the live balance check (consistent-hash bound);
  // a migration shifts rows between consecutive points of a curve.
  w.key("shards").begin_array();
  for (size_t s = 0; s < p.per_shard.size(); ++s) {
    const ShardLoad& load = p.per_shard[s];
    w.begin_object()
        .kv("shard", static_cast<uint64_t>(s))
        .kv("ops", load.ops)
        .kv("lease_reads", load.lease_reads)
        .kv("ordered_reads", load.ordered_reads)
        .kv("mutations", load.mutations)
        .kv("p50", load.latency.quantile(0.5))
        .kv("p99", load.latency.quantile(0.99))
        .kv("max", load.latency.max())
        .end_object();
  }
  w.end_array();
  w.end_object();
}

void emit_kv_artifacts(const std::string& name,
                       const std::vector<std::pair<std::string,
                                                   std::vector<KvPoint>>>&
                           curves) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", name);
  w.key("curves").begin_array();
  std::string csv =
      "label,offered_kops,achieved_kops,ops,sessions,lease_reads,"
      "ordered_reads,mutations,p50_us,p99_us,lease_p50_us,lease_p99_us,"
      "ordered_p50_us,ordered_p99_us,write_p50_us,write_p99_us,timeouts,"
      "shard_ops_min,shard_ops_max\n";
  for (const auto& [label, points] : curves) {
    w.begin_object();
    w.kv("label", label);
    w.key("points").begin_array();
    const KvPoint* best = nullptr;
    for (const KvPoint& p : points) {
      append_kv_point(w, p);
      if (best == nullptr || p.achieved_kops > best->achieved_kops) best = &p;
      uint64_t shard_min = p.per_shard.empty() ? 0 : p.per_shard[0].ops;
      uint64_t shard_max = shard_min;
      for (const ShardLoad& load : p.per_shard) {
        shard_min = std::min(shard_min, load.ops);
        shard_max = std::max(shard_max, load.ops);
      }
      char row[512];
      std::snprintf(
          row, sizeof(row),
          "%s,%.1f,%.1f,%llu,%llu,%llu,%llu,%llu,%.1f,%.1f,%.1f,%.1f,%.1f,"
          "%.1f,%.1f,%.1f,%llu,%llu,%llu\n",
          label.c_str(), p.offered_kops, p.achieved_kops,
          static_cast<unsigned long long>(p.measured),
          static_cast<unsigned long long>(p.sessions_touched),
          static_cast<unsigned long long>(p.stats.measured_lease_reads),
          static_cast<unsigned long long>(p.stats.measured_ordered_reads),
          static_cast<unsigned long long>(p.stats.measured_mutations),
          util::to_usec(p.latency.quantile(0.5)),
          util::to_usec(p.latency.quantile(0.99)),
          util::to_usec(p.lease_read.quantile(0.5)),
          util::to_usec(p.lease_read.quantile(0.99)),
          util::to_usec(p.ordered_read.quantile(0.5)),
          util::to_usec(p.ordered_read.quantile(0.99)),
          util::to_usec(p.write.quantile(0.5)),
          util::to_usec(p.write.quantile(0.99)),
          static_cast<unsigned long long>(p.timeouts),
          static_cast<unsigned long long>(shard_min),
          static_cast<unsigned long long>(shard_max));
      csv += row;
    }
    w.end_array();
    if (best != nullptr && best->metrics) {
      w.key("metrics");
      obs::append_registry(w, *best->metrics);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string base = bench_output_dir() + "/BENCH_" + name;
  if (!obs::write_text_file(base + ".json", w.str())) {
    std::fprintf(stderr, "warning: could not write %s.json\n", base.c_str());
  }
  if (!obs::write_text_file(base + ".csv", csv)) {
    std::fprintf(stderr, "warning: could not write %s.csv\n", base.c_str());
  }
  std::fprintf(stderr, "artifacts: %s.json %s.csv\n", base.c_str(),
               base.c_str());
}

void print_kv_point(const char* label, const KvPoint& p) {
  std::printf(
      "%-28s %9.1f %9.1f %8llu %9.1f %9.1f %9.1f %9.1f %7llu\n", label,
      p.offered_kops, p.achieved_kops,
      static_cast<unsigned long long>(p.sessions_touched),
      util::to_usec(p.latency.quantile(0.5)),
      util::to_usec(p.latency.quantile(0.99)),
      util::to_usec(p.lease_read.quantile(0.99)),
      util::to_usec(p.write.quantile(0.99)),
      static_cast<unsigned long long>(p.timeouts));
}

void print_header() {
  std::printf("%-28s %9s %9s %8s %9s %9s %9s %9s %7s\n", "curve",
              "off_kops", "ach_kops", "sessions", "p50_us", "p99_us",
              "lease_p99", "write_p99", "tmo");
}

}  // namespace
}  // namespace accelring::bench

int main(int argc, char** argv) {
  using namespace accelring;
  using namespace accelring::bench;

  bool smoke = false;
  bool durable = false;
  int smoke_shards = 1;
  double smoke_rate = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--durable") == 0) durable = true;
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      smoke_shards = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      smoke_rate = std::atof(argv[++i]);
    }
  }

  if (smoke) {
    std::printf("==== KV service smoke: K=%d%s ====\n\n", smoke_shards,
                durable ? " durable" : "");
    print_header();
    if (smoke_rate <= 0) smoke_rate = 20'000.0 * smoke_shards;
    const KvPoint p = run_kv_point(smoke_shards, smoke_rate,
                                   100'000, util::msec(500), 1, durable);
    const std::string label = "K=" + std::to_string(smoke_shards) + " smoke" +
                              (durable ? " durable" : "");
    print_kv_point(label.c_str(), p);
    emit_kv_artifacts("kv_smoke_" + std::to_string(smoke_shards) + "shard" +
                          (durable ? "_durable" : ""),
                      {{label, {p}}});
    return 0;
  }

  std::printf(
      "==== KV service: ops/sec and client latency, K = 1, 4, 8 ====\n\n");
  print_header();
  std::vector<std::pair<std::string, std::vector<KvPoint>>> curves;
  for (const int shards : {1, 4, 8}) {
    // One load grid shared by every K: the top point (~547 kops offered at
    // the diurnal mean) sits past the single ring's knee, so K=1 saturates
    // there while K=4 and K=8 hold flat client latency — sharding moves the
    // knee out rather than speeding up an unloaded ring.
    std::vector<KvPoint> points;
    const std::string label =
        "K=" + std::to_string(shards) + " / library / ten-gig / 1M sessions";
    for (const double rate : {150'000.0, 250'000.0, 350'000.0}) {
      points.push_back(
          run_kv_point(shards, rate, 1'000'000, util::msec(1150), 1));
      print_kv_point(label.c_str(), points.back());
    }
    curves.emplace_back(label, std::move(points));
  }
  emit_kv_artifacts("kv_service", curves);
  return 0;
}
