// Headline numbers (paper §I and §IV text): maximum clean-payload
// throughput per implementation and protocol, plus the simultaneous
// throughput+latency improvements the abstract claims.
//
// Paper reference points (8 nodes, 1350B unless noted):
//   1GbE:  Spread accelerated reaches >920 Mbps (network saturation);
//          accelerated improves latency by ~45% while raising throughput
//          30-60% over the original protocol.
//   10GbE: max throughput — Spread 2.3 Gbps (vs 1.7 original), daemon
//          prototype 3.3 Gbps, library prototype 4.6 Gbps.
//   10GbE, 8850B payloads: Spread 5.3 Gbps, daemon 6 Gbps, library 7.3 Gbps.
#include "bench_common.hpp"

namespace {

using namespace accelring::bench;
using accelring::harness::PointResult;

void report_max(std::vector<Curve>& curves, const char* fabric_name,
                bool ten_gig, size_t payload, double start, double step,
                double ceiling) {
  std::printf("---- max clean-payload throughput, %s, %zuB ----\n",
              fabric_name, payload);
  std::printf("%-10s %-14s %14s %14s\n", "impl", "protocol", "max_mbps",
              "mean_lat_us");
  for (ImplProfile profile :
       {ImplProfile::kLibrary, ImplProfile::kDaemon, ImplProfile::kSpread}) {
    for (Variant variant : {Variant::kOriginal, Variant::kAccelerated}) {
      PointConfig pc = base_point(ten_gig);
      pc.profile = profile;
      pc.proto = accelring::harness::bench_protocol(variant);
      pc.service = Service::kAgreed;
      pc.payload_size = payload;
      const PointResult best =
          accelring::harness::find_max_throughput(pc, start, step, ceiling);
      Curve curve;
      curve.label = std::string(fabric_name) + " / " +
                    curve_label(profile, variant, Service::kAgreed, payload);
      curve.points.push_back(best);
      curves.push_back(std::move(curve));
      std::printf("%-10s %-14s %14.0f %14.1f\n",
                  accelring::harness::profile_name(profile),
                  variant == Variant::kOriginal ? "original" : "accelerated",
                  best.achieved_mbps,
                  accelring::util::to_usec(best.mean_latency));
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("==== Headline summary: maximum throughputs ====\n\n");
  std::vector<Curve> curves;
  report_max(curves, "1GbE", false, 1350, 500, 100, 1000);
  report_max(curves, "10GbE", true, 1350, 1500, 500, 5500);
  report_max(curves, "10GbE", true, 8850, 4000, 500, 8500);
  emit_bench_artifacts("headline_summary", curves);
  return 0;
}
