// Multi-ring scaling: aggregate merged throughput for K = 1, 2, 4, 8 rings
// on the simulated 10-gigabit fabric, versus the single-ring baseline.
//
// Each K is swept over offered load (K x a per-ring grid around single-ring
// capacity) and reported at its best achieved merged throughput — the same
// max-throughput methodology as the paper's headline numbers. The scaling
// column is the multiplier over the K=1 baseline's best. Latency is
// injection to merged client receipt, so it includes time a message waits
// for the round-robin cursor to reach its ring.
#include <cstdio>

#include "bench_common.hpp"
#include "multiring/measure.hpp"

namespace accelring::bench {
namespace {

using multiring::MultiPointConfig;
using multiring::MultiPointResult;

MultiPointConfig scaling_point(int rings, protocol::Service service,
                               double per_ring_mbps) {
  MultiPointConfig cfg;
  cfg.ring.rings = rings;
  cfg.ring.nodes_per_ring = 8;
  cfg.ring.fabric = simnet::FabricParams::ten_gig();
  cfg.ring.proto = harness::bench_protocol(Variant::kAccelerated);
  cfg.ring.profile = ImplProfile::kLibrary;
  cfg.ring.merge_batch = 16;
  cfg.service = service;
  cfg.payload_size = 1350;
  cfg.offered_mbps = per_ring_mbps * rings;
  cfg.streams_per_node = 16 * rings;  // plenty of keys per ring
  cfg.warmup = util::msec(100);
  cfg.measure = util::msec(200);
  return cfg;
}

/// Best merged throughput over the per-ring load grid (max-throughput
/// search, stopping once achieved falls well short of offered).
MultiPointResult best_point(int rings, protocol::Service service) {
  MultiPointResult best;
  for (double per_ring : {3000.0, 3750.0, 4250.0, 4750.0, 5250.0}) {
    const MultiPointResult r =
        multiring::run_multiring_point(scaling_point(rings, service, per_ring));
    if (r.merged_mbps > best.merged_mbps) best = r;
    if (r.merged_mbps < 0.85 * r.offered_mbps) break;
  }
  return best;
}

void run_service(const char* title, protocol::Service service) {
  std::printf("# %s (library profile, accelerated, 1350B, 8 nodes/ring)\n",
              title);
  std::printf("%5s %12s %12s %9s %12s %12s %10s %10s %8s\n", "K",
              "offered_mbps", "merged_mbps", "scaling", "mean_lat_us",
              "p99_us", "retrans", "drops", "cpu%");
  double baseline = 0;
  for (int rings : {1, 2, 4, 8}) {
    const MultiPointResult r = best_point(rings, service);
    if (rings == 1) baseline = r.merged_mbps;
    multiring::print_multiring_row(rings, r, baseline);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace accelring::bench

int main() {
  std::printf("==== Multi-ring sharded ordering: throughput scaling ====\n\n");
  accelring::bench::run_service("Agreed delivery",
                                accelring::protocol::Service::kAgreed);
  accelring::bench::run_service("Safe delivery",
                                accelring::protocol::Service::kSafe);
  return 0;
}
