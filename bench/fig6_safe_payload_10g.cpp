// Figure 6: Throughput vs Safe latency for 1350-byte vs 8850-byte payloads,
// 10-gigabit network, accelerated protocol.
//
// Paper shapes: the large-payload improvements mirror Figure 4 for Safe
// delivery, with slightly higher throughputs than Agreed because client
// delivery is off the critical path.
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  std::printf(
      "==== Figure 6: Safe throughput vs latency, 10GbE, 1350B vs 8850B "
      "====\n\n");
  std::vector<accelring::harness::Curve> curves;
  for (ImplProfile profile :
       {ImplProfile::kLibrary, ImplProfile::kDaemon, ImplProfile::kSpread}) {
    for (size_t payload : {size_t{1350}, size_t{8850}}) {
      PointConfig pc = base_point(/*ten_gig=*/true);
      pc.profile = profile;
      pc.proto = accelring::harness::bench_protocol(Variant::kAccelerated);
      pc.service = Service::kSafe;
      pc.payload_size = payload;
      const auto loads =
          payload > 4000 ? ten_gig_large_loads() : ten_gig_loads();
      curves.push_back(accelring::harness::run_curve(
          curve_label(profile, Variant::kAccelerated, Service::kSafe,
                      payload),
          pc, loads));
      accelring::harness::print_curve(curves.back());
    }
  }
  emit_bench_artifacts("fig6_safe_payload_10g", curves);
  return 0;
}
