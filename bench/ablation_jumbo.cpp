// Ablation A5: jumbo frames (paper §IV-B discussion).
//
// The paper's 8850-byte experiments deliberately avoid jumbo frames so the
// results apply to any deployment, while noting that "using jumbo frames may
// improve performance further". With a 9000-byte MTU the 8850-byte datagram
// fits a single frame: no fragmentation, no per-fragment kernel cost, no
// whole-datagram loss amplification.
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  std::printf("==== Ablation: jumbo frames, 8850B payloads, 10GbE, "
              "accelerated, agreed ====\n\n");
  for (size_t mtu : {size_t{1500}, size_t{9000}}) {
    for (ImplProfile profile :
         {ImplProfile::kLibrary, ImplProfile::kDaemon,
          ImplProfile::kSpread}) {
      PointConfig pc = base_point(/*ten_gig=*/true);
      pc.fabric.mtu = mtu;
      pc.profile = profile;
      pc.proto = accelring::harness::bench_protocol(Variant::kAccelerated);
      pc.service = Service::kAgreed;
      pc.payload_size = 8850;
      char label[96];
      std::snprintf(label, sizeof label, "%s / mtu %zu",
                    accelring::harness::profile_name(profile), mtu);
      accelring::harness::print_curve(accelring::harness::run_curve(
          label, pc, {3000, 5000, 6000, 7000, 8000, 8600}));
    }
  }
  std::printf("expected shape: jumbo frames raise maximum throughput for "
              "every implementation (no fragmentation cost, less per-frame "
              "overhead)\n");
  return 0;
}
