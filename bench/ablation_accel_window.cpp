// Ablation A1: the accelerated window.
//
// The accelerated window is the protocol's single new knob: how many
// messages a participant may still multicast after passing the token. Zero
// reduces to the original protocol's sending pattern; larger values overlap
// more sending with token circulation, until excessive overlap builds switch
// queues (and with small switch buffers, loss). This sweep fixes the load
// near the original protocol's saturation point and varies the window.
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  std::printf("==== Ablation: accelerated window size (daemon, 1GbE, "
              "agreed, 800 Mbps offered) ====\n\n");
  std::printf("%8s %12s %12s %12s %10s %10s\n", "window", "achieved",
              "mean_lat_us", "p99_us", "retrans", "drops");
  for (uint32_t window : {0u, 2u, 5u, 10u, 15u, 20u, 30u, 40u}) {
    PointConfig pc = base_point(/*ten_gig=*/false);
    pc.profile = ImplProfile::kDaemon;
    pc.proto = accelring::harness::bench_protocol(Variant::kAccelerated);
    pc.proto.accelerated_window = window;
    pc.service = Service::kAgreed;
    pc.offered_mbps = 800;
    const auto r = accelring::harness::run_point(pc);
    std::printf("%8u %12.1f %12.1f %12.1f %10llu %10llu\n", window,
                r.achieved_mbps, accelring::util::to_usec(r.mean_latency),
                accelring::util::to_usec(r.p99_latency),
                static_cast<unsigned long long>(r.retransmits),
                static_cast<unsigned long long>(r.buffer_drops +
                                                r.socket_drops));
  }
  std::printf("\nexpected shape: window 0 behaves like the original protocol "
              "(lower throughput / higher latency at this load); moderate "
              "windows reach the offered load with low latency\n");
  return 0;
}
