// Figure 1: Agreed delivery latency vs throughput, 1-gigabit network.
//
// Paper shapes to reproduce: the accelerated protocol simultaneously
// improves throughput and latency for every implementation; Spread with the
// original protocol saturates around 500-800 Mbps with steeply rising
// latency while the accelerated protocol approaches wire saturation
// (>920 Mbps of clean payload) with latency comparable to the original
// protocol at half the load.
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  run_figure("fig1_agreed_1g",
             "Figure 1: Agreed delivery latency vs throughput, 1GbE, 1350B",
             /*ten_gig=*/false, Service::kAgreed, one_gig_loads());
  return 0;
}
