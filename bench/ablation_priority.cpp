// Ablation A2: token-priority switching method (paper §III-C).
//
// Method 1 (aggressive) raises token priority on any predecessor data
// message from the next round; method 2 (conservative, shipped in Spread)
// waits for a post-token message. The paper uses method 1 for the prototypes
// (best performance when tuned) and method 2 for Spread (stability).
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  std::printf(
      "==== Ablation: token priority method (daemon, 10GbE, agreed) ====\n\n");
  for (auto method : {accelring::protocol::PriorityMethod::kAggressive,
                      accelring::protocol::PriorityMethod::kConservative}) {
    PointConfig pc = base_point(/*ten_gig=*/true);
    pc.profile = ImplProfile::kDaemon;
    pc.proto = accelring::harness::bench_protocol(Variant::kAccelerated);
    pc.proto.priority = method;
    pc.service = Service::kAgreed;
    const char* name = method == accelring::protocol::PriorityMethod::kAggressive
                           ? "method 1 (aggressive)"
                           : "method 2 (conservative)";
    accelring::harness::print_curve(accelring::harness::run_curve(
        name, pc, {1000, 2000, 2500, 3000, 3250, 3500}));
  }
  std::printf("expected shape: both methods perform closely; the aggressive "
              "method can keep the token slightly faster; the paper notes that when every\n"
              "message is processed as it arrives the method has no impact — the\n"
              "simulated daemons keep up except at saturation, so close ties are expected\n");
  return 0;
}
