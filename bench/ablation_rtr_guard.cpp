// Ablation A3: the retransmission-request guard (paper §III-A-2).
//
// Under acceleration, the token's seq can reflect messages that have not
// been multicast yet. A naive participant that requests every gap up to the
// *current* token's seq would flood the ring with spurious retransmission
// requests for messages that were merely still in flight. The paper's rule
// requests only up to the seq of the *previous* round's token. This ablation
// compares the two by counting requested retransmissions on a loss-free
// fabric, where every request is by definition unnecessary.
#include "bench_common.hpp"

#include "harness/latency.hpp"

namespace {

using namespace accelring::bench;

struct GuardResult {
  uint64_t rtr_requested = 0;
  uint64_t retransmitted = 0;
  double achieved = 0;
  double mean_lat_us = 0;
};

GuardResult run(bool naive_guard) {
  PointConfig pc = base_point(/*ten_gig=*/false);
  pc.profile = ImplProfile::kLibrary;
  pc.proto = accelring::harness::bench_protocol(Variant::kAccelerated);
  pc.service = Service::kAgreed;
  pc.offered_mbps = 800;
  // The naive guard is exactly what the original-protocol code path does
  // (request up to the received token's seq), so run "original" rtr rules
  // with accelerated sending by toggling the variant flag the engine uses
  // for the bound — emulated here via a dedicated config option.
  pc.proto.naive_rtr_guard = naive_guard;
  const auto r = accelring::harness::run_point(pc);
  GuardResult g;
  g.rtr_requested = r.rtr_requested;
  g.retransmitted = r.retransmits;
  g.achieved = r.achieved_mbps;
  g.mean_lat_us = accelring::util::to_usec(r.mean_latency);
  return g;
}

}  // namespace

int main() {
  std::printf("==== Ablation: rtr guard under acceleration (library, 1GbE, "
              "800 Mbps, zero loss) ====\n\n");
  std::printf("%-24s %14s %14s %12s %12s\n", "guard", "rtr_requested",
              "retransmitted", "achieved", "mean_lat_us");
  const GuardResult paper = run(false);
  const GuardResult naive = run(true);
  std::printf("%-24s %14llu %14llu %12.1f %12.1f\n",
              "previous-token (paper)",
              static_cast<unsigned long long>(paper.rtr_requested),
              static_cast<unsigned long long>(paper.retransmitted),
              paper.achieved, paper.mean_lat_us);
  std::printf("%-24s %14llu %14llu %12.1f %12.1f\n", "current-token (naive)",
              static_cast<unsigned long long>(naive.rtr_requested),
              static_cast<unsigned long long>(naive.retransmitted),
              naive.achieved, naive.mean_lat_us);
  std::printf("\nexpected shape: the paper's guard requests ~zero spurious "
              "retransmissions; the naive guard requests many (every gap "
              "created by not-yet-sent post-token messages)\n");
  return 0;
}
