// Related-work comparison (paper §V): the Accelerated Ring protocol versus
// a fixed-sequencer protocol (JGroups SEQUENCER style) and a
// U-Ring-Paxos-style protocol, all on the identical simulated fabric.
//
// Paper reference points (same 8-machine setup as the main evaluation):
//  * JGroups total ordering: ~650 Mbps at 1GbE with 1350-byte messages,
//    up to ~3 Gbps at 10GbE.
//  * U-Ring Paxos: >750 Mbps at 1GbE with 1350-byte messages (with
//    batching), latency profile similar to the original Ring protocol's
//    Safe delivery; close to 1.5 Gbps at 10GbE.
//  * Accelerated Ring: >920 Mbps at 1GbE; 2.3-4.6 Gbps at 10GbE.
//
// The JVM-era per-message processing overheads of JGroups and the
// (un-modelled) Paxos bookkeeping are approximated with a heavier CPU cost
// profile; see DESIGN.md §1.
#include "bench_common.hpp"

#include "baselines/baseline_cluster.hpp"
#include "baselines/sequencer.hpp"
#include "baselines/uring_paxos.hpp"
#include "harness/latency.hpp"

namespace {

using namespace accelring;
using namespace accelring::bench;

/// Heavier per-message costs for the managed-runtime baselines (calibrated
/// so the sequencer's 10GbE ceiling lands near JGroups' measured ~3 Gbps).
transport::HostCosts baseline_costs() {
  transport::HostCosts costs;
  costs.data_process = 1'000;
  costs.delivery = 800;
  costs.send_syscall = 1'400;
  return costs;
}

template <typename Protocol, typename Config>
harness::PointResult run_baseline_point(bool ten_gig, Config cfg,
                                        double offered_mbps,
                                        size_t payload_size) {
  const int kNodes = 8;
  const protocol::Nanos warmup = util::msec(100);
  const protocol::Nanos window_end = warmup + util::msec(300);
  baselines::BaselineCluster<Protocol, Config> cluster(
      kNodes,
      ten_gig ? simnet::FabricParams::ten_gig()
              : simnet::FabricParams::one_gig(),
      cfg, /*seed=*/1, baseline_costs());

  util::LatencyStats latency;
  util::Meter meter;
  cluster.set_on_deliver([&](int node, const protocol::Delivery& d,
                             protocol::Nanos at) {
    if (node != 1) return;  // one observer (not the coordinator)
    if (at < warmup || at >= window_end) return;
    harness::PayloadStamp stamp;
    if (!harness::parse_payload(d.payload, stamp)) return;
    latency.add(at - stamp.inject_time);
    meter.add(d.payload.size());
  });

  // Fixed-rate injection, mirroring harness::RateInjector.
  const double msgs_per_sec = offered_mbps * 1e6 / 8.0 /
                              static_cast<double>(payload_size);
  const auto interval =
      static_cast<protocol::Nanos>(1e9 * kNodes / msgs_per_sec);
  for (int node = 0; node < kNodes; ++node) {
    // Self-rescheduling injector; the shared_ptr keeps the closure alive
    // across the event chain.
    auto inject =
        std::make_shared<std::function<void(protocol::Nanos, uint32_t)>>();
    *inject = [&cluster, node, payload_size, interval, window_end, inject](
                  protocol::Nanos at, uint32_t index) {
      if (at >= window_end) return;
      cluster.eq().schedule(at, [&cluster, node, payload_size, at, index,
                                 interval, inject] {
        harness::PayloadStamp stamp{at, static_cast<uint32_t>(node), index};
        cluster.submit(node, harness::make_payload(payload_size, stamp));
        (*inject)(at + interval, index + 1);
      });
    };
    (*inject)(util::usec(100) + interval * node / kNodes, 0);
  }
  cluster.run_until(window_end + util::msec(50));

  harness::PointResult r;
  r.offered_mbps = offered_mbps;
  r.achieved_mbps = meter.mbps(window_end - warmup);
  r.mean_latency = latency.mean();
  r.p50_latency = latency.percentile(0.5);
  r.p99_latency = latency.percentile(0.99);
  r.messages = meter.messages();
  return r;
}

template <typename Protocol, typename Config>
void run_baseline_curve(const char* label, bool ten_gig, Config cfg,
                        const std::vector<double>& loads) {
  harness::Curve curve;
  curve.label = label;
  for (double mbps : loads) {
    curve.points.push_back(
        run_baseline_point<Protocol, Config>(ten_gig, cfg, mbps, 1350));
  }
  harness::print_curve(curve);
}

}  // namespace

int main() {
  std::printf("==== Related protocols (paper SectionV), 1350B payloads ====\n\n");

  const std::vector<double> one_gig = {100, 300, 500, 650, 800, 900};
  const std::vector<double> ten_gig = {500, 1000, 1500, 2000, 2500, 3000};

  // Our protocol, same grid, for reference.
  PointConfig ring = base_point(/*ten_gig=*/false);
  ring.proto = accelring::harness::bench_protocol(Variant::kAccelerated);
  accelring::harness::print_curve(accelring::harness::run_curve(
      "accelerated ring / library / 1GbE", ring, one_gig));

  run_baseline_curve<baselines::SequencerProtocol, baselines::SequencerConfig>(
      "sequencer (JGroups-style) / 1GbE", false, {}, one_gig);
  run_baseline_curve<baselines::URingProtocol, baselines::URingConfig>(
      "u-ring paxos (batching) / 1GbE", false, {}, one_gig);

  ring = base_point(/*ten_gig=*/true);
  ring.proto = accelring::harness::bench_protocol(Variant::kAccelerated);
  accelring::harness::print_curve(accelring::harness::run_curve(
      "accelerated ring / library / 10GbE", ring, ten_gig));

  run_baseline_curve<baselines::SequencerProtocol, baselines::SequencerConfig>(
      "sequencer (JGroups-style) / 10GbE", true, {}, ten_gig);
  run_baseline_curve<baselines::URingProtocol, baselines::URingConfig>(
      "u-ring paxos (batching) / 10GbE", true, {}, ten_gig);

  std::printf(
      "expected shape: the ring saturates 1GbE; the sequencer tops out "
      "earlier (coordinator CPU + double traversal of the sender link); "
      "u-ring paxos pays ring-traversal latency similar to original-ring "
      "Safe delivery and caps lowest at 10GbE\n");
  return 0;
}
