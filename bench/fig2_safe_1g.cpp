// Figure 2: Safe delivery latency vs throughput, 1-gigabit network.
//
// Paper shapes: same ordering as Figure 1 but with higher absolute latency
// (Safe delivery needs the aru to confirm receipt by all, costing about two
// extra token rounds); the original protocol supports ~600 Mbps before the
// latency knee, the accelerated protocol 800+ Mbps at roughly half the
// latency.
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  run_figure("fig2_safe_1g",
             "Figure 2: Safe delivery latency vs throughput, 1GbE, 1350B",
             /*ten_gig=*/false, Service::kSafe, one_gig_loads());
  return 0;
}
