// Ablation A6: message packing (paper §IV-A-3).
//
// Spread packs small messages into one protocol packet bounded by the
// 1500-byte MTU. For small-message workloads this amortizes per-packet
// costs (headers, syscalls, token accounting) dramatically; for MTU-sized
// messages it is a no-op. This sweep sends 200-byte messages with packing
// on and off.
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  std::printf("==== Ablation: message packing, 200B messages, 1GbE, "
              "accelerated, agreed ====\n\n");
  for (bool packing : {false, true}) {
    PointConfig pc = base_point(/*ten_gig=*/false);
    pc.profile = ImplProfile::kSpread;
    pc.proto = accelring::harness::bench_protocol(Variant::kAccelerated);
    pc.proto.enable_packing = packing;
    pc.service = Service::kAgreed;
    pc.payload_size = 200;
    accelring::harness::print_curve(accelring::harness::run_curve(
        packing ? "packing on" : "packing off", pc,
        {50, 100, 200, 300, 400, 500}));
  }
  std::printf("expected shape: packing multiplies the small-message ceiling "
              "(several 200B messages share one packet and one sequence "
              "number) and cuts CPU per delivered message\n");
  return 0;
}
