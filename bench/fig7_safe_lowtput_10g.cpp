// Figure 7: Safe delivery latency at low throughputs, 10-gigabit network,
// Spread implementation.
//
// Paper shape to reproduce: at very low aggregate throughput the *original*
// protocol has lower Safe-delivery latency than the accelerated protocol —
// raising the token aru can cost up to an extra round under acceleration
// (the aru typically cannot be raised in step with the token's seq). The
// paper measures 520us (original) vs 620us (accelerated) at 100 Mbps, with
// the accelerated protocol winning consistently once load reaches ~4-5% of
// fabric capacity (400-500 Mbps).
#include "bench_common.hpp"

int main() {
  using namespace accelring::bench;
  std::printf(
      "==== Figure 7: Safe delivery latency at low throughput, 10GbE, "
      "Spread ====\n\n");
  const std::vector<double> loads = {50,  100, 200, 300, 400,
                                     500, 700, 1000};
  std::vector<accelring::harness::Curve> curves;
  for (Variant variant : {Variant::kOriginal, Variant::kAccelerated}) {
    PointConfig pc = base_point(/*ten_gig=*/true);
    pc.profile = ImplProfile::kSpread;
    pc.proto = accelring::harness::bench_protocol(variant);
    pc.service = Service::kSafe;
    pc.payload_size = 1350;
    curves.push_back(accelring::harness::run_curve(
        curve_label(ImplProfile::kSpread, variant, Service::kSafe, 1350), pc,
        loads));
    accelring::harness::print_curve(curves.back());
  }
  emit_bench_artifacts("fig7_safe_lowtput_10g", curves);
  std::printf(
      "expected shape: original wins below a few hundred Mbps; accelerated "
      "wins beyond ~5%% of fabric capacity\n");
  return 0;
}
