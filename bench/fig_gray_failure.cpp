// Gray-failure A/B: what quarantine buys when a member is slow, not dead.
//
// Three runs of the same seeded 5-node cluster and workload:
//   A  fault-free baseline
//   B  node 3 at 10x CPU from t=200ms, gray-failure detection DISABLED —
//      the straggler stays in the ring and throttles every rotation
//   C  same fault, detection ENABLED — the ring evicts the straggler into
//      quarantine and recovers
// Reported: agreed deliveries observed at node 0 inside the steady
// post-fault window [1s, 2s), plus quarantine/readmit counters. The
// acceptance bar (EXPERIMENTS.md): C >= 0.80 * A; B sits well below.
#include <cstdio>
#include <vector>

#include "harness/cluster.hpp"
#include "protocol/types.hpp"
#include "simnet/network.hpp"
#include "util/time.hpp"

namespace accelring {
namespace {

using harness::ImplProfile;
using harness::SimCluster;

constexpr uint64_t kSeed = 21;
constexpr util::Nanos kHorizon = util::sec(2);
constexpr util::Nanos kFaultAt = util::msec(200);
constexpr util::Nanos kFrom = util::sec(1);
constexpr util::Nanos kTo = util::sec(2);
constexpr int kNodes = 5;
// ~100k msgs/s offered ring-wide: far under a healthy member's capacity
// (~2 µs CPU per message) but ~2x what the 10x straggler can process, so
// the ring visibly throttles to the slowest member unless it is evicted.
constexpr util::Nanos kSubmitEvery = util::usec(50);
constexpr size_t kPayload = 256;

protocol::ProtocolConfig proto_config(bool gray) {
  protocol::ProtocolConfig cfg;
  cfg.timeouts.token_loss = util::msec(30);
  cfg.timeouts.join = util::msec(5);
  cfg.timeouts.consensus = util::msec(60);
  cfg.gray.enabled = gray;
  return cfg;
}

struct RunOutcome {
  uint64_t window_delivered = 0;
  uint64_t quarantines = 0;
  uint64_t readmits = 0;
};

RunOutcome run_once(bool gray, bool straggler) {
  SimCluster cluster(kNodes, simnet::FabricParams::one_gig(),
                     proto_config(gray), ImplProfile::kLibrary, kSeed);
  RunOutcome out;
  cluster.add_on_deliver([&out](int node, const protocol::Delivery&,
                                util::Nanos at) {
    if (node == 0 && at >= kFrom && at < kTo) ++out.window_delivered;
  });
  const int64_t shots = kHorizon / kSubmitEvery;
  for (int node = 0; node < kNodes; ++node) {
    for (int64_t k = 0; k < shots; ++k) {
      const util::Nanos at =
          kSubmitEvery * k + util::usec(90) * node + util::usec(50);
      cluster.eq().schedule(at, [&cluster, node] {
        if (cluster.net().host_down(node)) return;
        cluster.submit(node, protocol::Service::kAgreed,
                       std::vector<std::byte>(kPayload));
      });
    }
  }
  if (straggler) {
    cluster.eq().schedule(kFaultAt, [&cluster] {
      cluster.process(3).set_cpu_multiplier(10.0);
    });
  }
  cluster.start_static();
  cluster.run_until(kHorizon);
  const harness::ClusterStats stats = cluster.stats();
  out.quarantines = stats.quarantines();
  out.readmits = stats.readmits();
  return out;
}

}  // namespace
}  // namespace accelring

int main() {
  using namespace accelring;
  std::printf("==== gray failure: 10x CPU straggler at %lld ms, window "
              "[%lld, %lld) ms, seed %llu ====\n\n",
              static_cast<long long>(kFaultAt / util::msec(1)),
              static_cast<long long>(kFrom / util::msec(1)),
              static_cast<long long>(kTo / util::msec(1)),
              static_cast<unsigned long long>(kSeed));

  const RunOutcome a = run_once(/*gray=*/true, /*straggler=*/false);
  const RunOutcome b = run_once(/*gray=*/false, /*straggler=*/true);
  const RunOutcome c = run_once(/*gray=*/true, /*straggler=*/true);

  const auto ratio = [&](const RunOutcome& r) {
    return a.window_delivered == 0
               ? 0.0
               : static_cast<double>(r.window_delivered) /
                     static_cast<double>(a.window_delivered);
  };
  std::printf("%-34s %12s %8s %12s %9s\n", "run", "delivered", "vs A",
              "quarantines", "readmits");
  std::printf("%-34s %12llu %8s %12llu %9llu\n", "A fault-free",
              static_cast<unsigned long long>(a.window_delivered), "1.00",
              static_cast<unsigned long long>(a.quarantines),
              static_cast<unsigned long long>(a.readmits));
  std::printf("%-34s %12llu %8.2f %12llu %9llu\n",
              "B straggler, detection disabled",
              static_cast<unsigned long long>(b.window_delivered), ratio(b),
              static_cast<unsigned long long>(b.quarantines),
              static_cast<unsigned long long>(b.readmits));
  std::printf("%-34s %12llu %8.2f %12llu %9llu\n",
              "C straggler, quarantine enabled",
              static_cast<unsigned long long>(c.window_delivered), ratio(c),
              static_cast<unsigned long long>(c.quarantines),
              static_cast<unsigned long long>(c.readmits));
  std::printf("\nacceptance: C/A >= 0.80 -> %s\n",
              ratio(c) >= 0.80 ? "PASS" : "FAIL");
  return ratio(c) >= 0.80 ? 0 : 1;
}
